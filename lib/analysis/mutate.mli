(** First-order mutation analysis of compiled monitors.

    The monitors are themselves programs; this module checks that the
    analyzer and the trace suites would actually catch a subtly wrong
    automaton.  Each suite entry is perturbed by one first-order
    mutation at a time:

    - {e pattern-level} operators — fragment swap/delete, range
      delete/retarget, counter off-by-one ([lo±1], [hi±1]) and
      saturation flips, deadline [±1] and the timed→untimed flip,
      repetition flip — produce a mutated {!Loseq_core.Pattern.t},
      which flows through {!Loseq_core.Compiled}, {!Loseq_core.Flat},
      {!Checks} and {!Suite_checks} exactly like a hand-written
      pattern (so replaying a pattern mutant doubles as
      flat-vs-compiled cross-validation);
    - {e table-level} operators — recognizer-category swaps
      (Self↔Current), terminator-bit flips, owner retargets — use
      {!Loseq_core.Compiled.patched} to perturb the compiled tables
      directly, covering automata no pattern denotes;
    - one {e behavioral} operator, verdict inversion.

    Every mutant is killed (or not) by three tiers, each reporting
    which one caught it:

    + {e static} ([Static]): the {!Checks}/{!Suite_checks} finding
      codes of the mutated pattern differ from the original's;
    + {e equivalence} ([Equivalence]): the exact-counter synchronous
      product of original and mutant ({!Machine.make}[ ~exact:true] /
      {!Machine.of_compiled}) reaches a state where the two verdicts
      — or the deadline observables — differ; the distinguishing path
      is concretized and verified by replay.  A mutant whose complete
      product reaches {e no} such state (and no armed-and-done state
      with differing deadlines, the late-conclusion guard) is provably
      equivalent and pruned as {e stillborn} — not a survivor;
    + {e differential} ([Differential]): generated, boundary-probing
      and user/catalog traces replayed through original and mutant in
      lockstep until a verdict differs.

    Execution order is cheapest-first (static, differential,
    equivalence); the reported tier is always the one that actually
    made the kill. *)

open Loseq_core

type tier = Static | Equivalence | Differential

val tier_name : tier -> string

type mutant = {
  id : string;  (** ["entry/op"] — stable, replayable via [--mutant] *)
  entry : string;
  op : string;
  description : string;
  pattern : Pattern.t option;  (** [None]: table-level or behavioral *)
  make : unit -> Compiled.t;  (** a fresh instance of the mutant *)
  inverted : bool;  (** verdict inversion applies on top of [make] *)
}

type outcome =
  | Stillborn  (** proven equivalent on the complete product *)
  | Killed of { tier : tier; witness : string }
  | Survived of { undecided : bool }
      (** [undecided]: the equivalence product hit the budget, so the
          mutant could not be pruned either *)

type result = { mutant : mutant; outcome : outcome }

type summary = {
  results : result list;
  generated : int;
  stillborn : int;
  killed_static : int;
  killed_equivalence : int;
  killed_differential : int;
  survivors : result list;
  kill_rate : float;
      (** kills / (generated - stillborn); [1.0] when nothing remains *)
  cross_checked : int;  (** flat-vs-compiled lockstep replays performed *)
  divergences : (string * string) list;
      (** (mutant id, detail) — flat and compiled disagreed; must be
          empty unless one of the engines is broken *)
}

val mutants_of : ?seed:int -> string * Pattern.t -> mutant list
(** All mutants of one labelled entry.  [seed] (default [0x5eed])
    drives the deterministic sampling of table-level operators.
    Ill-formed or no-op candidates are dropped at generation time. *)

type item = { trace : Trace.t; final_time : int option; tag : string }

val workload :
  ?traces:Trace.t list ->
  seed:int ->
  weak:bool ->
  string * Pattern.t ->
  item list
(** The differential tier's trace set for one entry: a canonical
    round, per-range boundary probes (max run, overflow, underflow,
    missing range, skipped fragment, stray re-entry), deadline
    straddles for timed patterns, seeded {!Loseq_core.Generate} valid
    and violating traces, and the caller's [traces].  With
    [~weak:true] only a single generated valid trace — the
    deliberately weakened set used to demonstrate that trace quality
    moves the kill rate. *)

val run :
  ?budget:int ->
  ?seed:int ->
  ?tiers:tier list ->
  ?traces:Trace.t list ->
  ?weak:bool ->
  ?only:string ->
  (string * Pattern.t) list ->
  summary
(** Mutate every entry of the suite and kill each mutant with the
    requested [tiers] (default all three).  [budget] bounds each
    product exploration (default 200000 states); [traces] join the
    differential workload; [only] restricts to a single mutant id
    (the [--mutant] replay path).  Raises [Failure] if a product
    witness fails to replay — an abstraction soundness bug, not a
    user error. *)

val findings : ?floor:float -> ?suite:string -> summary -> Finding.t list
(** [mutant-survived] (warning) per survivor with a replayable
    [loseq mutate --mutant] command as witness; [backend-divergence]
    (error) per flat-vs-compiled disagreement; [mutation-kill-floor]
    (error) when [floor] (a percentage) is given and the kill rate
    falls below it. *)
