(** Breadth-first exploration of a finite transition system.

    Generic over the state type so the same explorer serves a single
    abstract machine ({!Machine}) and the synchronous product of two
    machines ({!Suite_checks}).  BFS order makes the predecessor tree a
    shortest-path tree, so {!path} returns minimal witnesses for free.

    Exploration is bounded by a state [budget]; when the budget is hit
    the result is marked incomplete and callers must not draw
    universally-quantified conclusions (unreachability, dead names,
    safe sinks) from it — existential ones ({!find} hits) remain
    valid. *)

type 'a system = {
  init : 'a;
  n_ids : int;  (** event ids are [0 .. n_ids-1] *)
  step : 'a -> int -> 'a list;
  final : 'a -> bool;  (** absorbing — not expanded *)
}

type 'a exploration = private {
  system : 'a system;
  states : 'a array;  (** in BFS discovery order; index 0 = [init] *)
  pred : (int * int) array;  (** [(parent, id)]; [(-1, -1)] at the root *)
  succ : (int * int) list array;  (** outgoing [(id, target)] edges *)
  complete : bool;
}

val explore : ?budget:int -> 'a system -> 'a exploration
(** [budget] defaults to 200000 states. *)

val find : 'a exploration -> ('a -> bool) -> int option
(** Lowest-index (hence shortest-path) state satisfying the
    predicate. *)

val path : 'a exploration -> int -> (int * 'a) list
(** The BFS-tree path from the root to a node: [(event id, state
    reached)] per step, root excluded. *)

val co_reachable : 'a exploration -> ('a -> bool) -> bool array
(** [co_reachable ex p] marks every explored state from which some
    state satisfying [p] is reachable (backward closure over the
    explored edges).  Only meaningful when [ex.complete]. *)
