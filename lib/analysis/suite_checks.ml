open Loseq_core

(* The synchronous product of two machines over the union alphabet.
   Returns the exploration plus the union name table. *)
let product ?budget ma mb =
  let union =
    Array.of_list
      (Name.Set.elements
         (Name.Set.union
            (Pattern.alpha (Machine.pattern ma))
            (Pattern.alpha (Machine.pattern mb))))
  in
  let id_in m =
    let tbl = Hashtbl.create 16 in
    for i = 0 to Machine.n_ids m - 1 do
      Hashtbl.replace tbl (Machine.name m i) i
    done;
    Array.map
      (fun nm -> match Hashtbl.find_opt tbl nm with Some i -> i | None -> -1)
      union
  in
  let ida = id_in ma and idb = id_in mb in
  let step (sa, sb) uid =
    let sas = if ida.(uid) >= 0 then Machine.step ma sa ida.(uid) else [ sa ] in
    let sbs = if idb.(uid) >= 0 then Machine.step mb sb idb.(uid) else [ sb ] in
    List.concat_map (fun a -> List.map (fun b -> (a, b)) sbs) sas
  in
  let sys =
    {
      Reach.init = (Machine.init ma, Machine.init mb);
      n_ids = Array.length union;
      step;
      final = (fun (a, b) -> Machine.is_final a && Machine.is_final b);
    }
  in
  (Reach.explore ?budget sys, union)

let untimed p = match p with Pattern.Antecedent _ -> true | Pattern.Timed _ -> false

(* Everything the pair analysis needs from one product exploration. *)
type pair_facts = {
  decided : bool;  (** both untimed and exploration complete *)
  a_viol_not_b : bool;  (** some trace violates [a] but not [b] *)
  b_viol_not_a : bool;
  a_matchable : bool;  (** [a] matched with [a] unviolated *)
  b_matchable : bool;
  both_witness : int option;  (** node: both matched, neither violated *)
}

let facts ?budget a b =
  if not (untimed a && untimed b) then None
  else begin
    (* exact counters: the product must preserve the correlation
       between the two machines' counters (see [Machine.make]) *)
    let ma = Machine.make ~exact:true a and mb = Machine.make ~exact:true b in
    let ex, union = product ?budget ma mb in
    let find p = Reach.find ex p <> None in
    let viol = Machine.is_violated in
    Some
      ( {
          decided = ex.Reach.complete;
          a_viol_not_b = find (fun (sa, sb) -> viol sa && not (viol sb));
          b_viol_not_a = find (fun (sa, sb) -> viol sb && not (viol sa));
          a_matchable =
            find (fun ((sa : Machine.state), _) -> sa.matched && not (viol sa));
          b_matchable =
            find (fun (_, (sb : Machine.state)) -> sb.matched && not (viol sb));
          both_witness =
            Reach.find ex
              (fun ((sa : Machine.state), (sb : Machine.state)) ->
                sa.matched && sb.matched && (not (viol sa)) && not (viol sb));
        },
        (ma, mb, ex, union) )
  end

let subsumes ?budget a b =
  match facts ?budget a b with
  | Some (f, _) when f.decided -> Some (not f.b_viol_not_a)
  | _ -> None

(* Concretize a product path: interleave the union-name events; each
   machine's projection is checked by replay on its own monitor. *)
let product_witness union ex node =
  let steps = Reach.path ex node in
  List.mapi (fun i (uid, _) -> { Trace.name = union.(uid); time = i }) steps

let compatible_witness ?budget a b =
  match facts ?budget a b with
  | Some (f, (_, _, ex, union)) when f.decided ->
      let w = Option.map (product_witness union ex) f.both_witness in
      Some (w, f.a_matchable && f.b_matchable)
  | _ -> None

let findings ?budget entries =
  let fs = ref [] in
  let add f = fs := f :: !fs in
  let arr = Array.of_list entries in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let la, a = arr.(i) and lb, b = arr.(j) in
      match facts ?budget a b with
      | None -> ()
      | Some (f, _) when f.decided ->
          let a_red = (not f.a_viol_not_b) && f.a_matchable in
          let b_red = (not f.b_viol_not_a) && f.b_matchable in
          (* A checker that cannot even match gets its own per-pattern
             findings; keep the cross-pattern noise down. *)
          (if a_red && b_red then
             add
               (Finding.v ~subject:lb Finding.Warning "equivalent-checkers"
                  "'%s' and '%s' reject exactly the same traces: one of \
                   them is redundant"
                  la lb)
           else if b_red then
             add
               (Finding.v ~subject:lb Finding.Warning "subsumed-checker"
                  "every trace that violates '%s' already violates '%s': \
                   '%s' can be dropped"
                  lb la lb)
           else if a_red then
             add
               (Finding.v ~subject:la Finding.Warning "subsumed-checker"
                  "every trace that violates '%s' already violates '%s': \
                   '%s' can be dropped"
                  la lb la));
          if f.a_matchable && f.b_matchable && f.both_witness = None then
            add
              (Finding.v ~subject:(la ^ ", " ^ lb) Finding.Error
                 "conflicting-pair"
                 "'%s' and '%s' are each matchable alone, but no trace \
                  can complete a round of both without violating one: \
                  together they reject every run they fully exercise"
                 la lb)
      | Some _ -> ()
    done
  done;
  Finding.order (List.rev !fs)
