(** The counter-interval abstraction of a compiled monitor.

    A {!Loseq_core.Compiled} monitor is a finite control structure plus
    one counter per range.  The counters make the configuration space
    huge ([Π (hiᵢ+3)] per {!Loseq_core.Lint.state_estimate}), but the
    step function only ever compares a counter against its range's two
    bounds, so for reachability questions the exact value is irrelevant
    — only which of the intervals [[1,lo-1]], [[lo,hi-1]], [{hi}] it
    lies in.  This module re-implements the Fig. 5 step function over
    that abstraction:

    - {!rclass} replaces (state, counter) by (state, class): exact
      values below [lo], one class for [[lo, hi-1]], one for [hi];
    - stepping is deterministic except for a [Ready] recognizer seeing
      its own name, which may stay [Ready] or cross to [Full] (at most
      two successors per event);
    - the stay alternative never changes the rest of the configuration
      (all other recognizers of the fragment moved on the first event
      already), so stay edges are pure self-loops in the abstract
      graph.

    The abstraction is therefore {e exact} for reachability: every
    abstract path that never repeats a configuration concretizes to a
    real trace (see {!Witness.concretize}), and every concrete run
    projects to an abstract path ({!project}).  Time is abstracted to
    the two booleans the step function actually consults ([armed],
    [q_done]); deadline-crossing violations are represented by
    {!can_time_violate} rather than by edges. *)

open Loseq_core

type rclass =
  | Idle  (** dropped out of a disjunctive fragment, or not yet reached *)
  | Waiting  (** in the active fragment, nothing seen *)
  | Started  (** fragment entered by a sibling's event *)
  | Below of int
      (** counting, counter [< lo] — kept exact so that abstract
          shortest paths to a minimal completion count concrete events
          ({!Checks} measures deadline feasibility with them) *)
  | Ready  (** counting, counter in [[lo, hi-1]] — an Accept succeeds *)
  | Full  (** counting, counter [= hi] — one more own event overflows *)
  | Counting of int
      (** exact mode only: the concrete counter value (see {!make}) *)
  | Done  (** block closed by a sibling, waiting for the fragment *)

type config = {
  active : int;
  recs : rclass array;
  armed : bool;  (** timed: premise recognized, deadline running *)
  q_done : bool;  (** timed: conclusion minimally recognized *)
}

type status = Running of config | Satisfied | Violated of Diag.reason

type state = { status : status; matched : bool }
(** [matched] is sticky: some recognition round completed — the
    terminator accepted for an antecedent, the conclusion minimally
    recognized for a timed implication (mirrors
    {!Loseq_core.Compiled.rounds_completed}[ > 0]). *)

type t

val make : ?exact:bool -> Pattern.t -> t
(** Raises {!Wellformed.Ill_formed}.  With [~exact:true] counters are
    not abstracted at all ({!rclass.Counting}): stepping is fully
    deterministic and configurations are in bijection with the
    concrete monitor's.  Synchronous products need this — two interval
    abstractions stepped side by side lose the correlation between
    counters driven by the same events, producing joint states no real
    trace reaches (e.g. one machine [Full] while the other is still
    [Below]), which hides subsumption and conflicts.  The price is a
    state space proportional to the counter bounds, so exact
    exploration relies on the {!Reach} budget.  Default: [false]. *)

val of_compiled : ?exact:bool -> Compiled.t -> t
(** Abstract machine over a monitor's {e actual} tables
    ({!Loseq_core.Compiled.static}) rather than over a pattern.  For a
    monitor built by {!Loseq_core.Compiled.compile} this is equivalent
    to {!make}; for a table-patched monitor
    ({!Loseq_core.Compiled.patched}) it is the only way to get an
    abstraction, since the patched automaton need not be denotable as a
    pattern.  {!pattern} then returns the pattern of the monitor the
    patch was applied to (advisory only). *)

val pattern : t -> Pattern.t
val timed : t -> bool

val deadline : t -> int
(** The compiled deadline ([0] for untimed patterns) — products
    comparing two timed machines need it to decide whether two armed
    configurations violate at the same instant. *)

val n_ids : t -> int
(** Alphabet size; event ids are [0 .. n_ids-1] in {!Loseq_core.Name}
    order (the {!Loseq_core.Compiled} interning). *)

val name : t -> int -> Name.t
val init : t -> state

val step : t -> state -> int -> state list
(** All abstract successors on event [id] — one or two states;
    [Satisfied] and [Violated] are absorbing. *)

val is_violated : state -> bool
val is_final : state -> bool
(** No successor differs from the state itself. *)

val can_time_violate : t -> state -> bool
(** A running, armed, not-yet-[q_done] configuration of a timed
    pattern: letting simulation time pass beyond the deadline violates
    ([Deadline_miss]) without any further event. *)

val completable : t -> state -> bool
(** The active fragment is the last one and minimally complete: the
    next terminator closes the round (for a timed pattern this is
    exactly the configuration where [q_done] gets set). *)

val project : t -> Compiled.t -> state
(** Abstract a concrete monitor configuration — the homomorphism the
    exactness claim (and the witness replay tests) are stated with. *)
