(** Pairwise commutation analysis of a monitor automaton.

    For every unordered pair of alphabet names [(a, b)] this module
    decides, on the exact-counter state space ({!Machine.make}
    [~exact:true], deterministic and in bijection with the concrete
    {!Loseq_core.Compiled} configurations), whether delivering [ab] and
    [ba] from every reachable configuration leads to
    verdict-equivalent states.  Two states are {e verdict-equivalent}
    when no event continuation (followed by finalization) can tell
    them apart on the only observables a hosting layer acts on:
    violated-or-not, and armed-past-deadline-or-not
    ({!Machine.can_time_violate}).  Equivalence is computed once for
    the whole explored state set by Moore partition refinement seeded
    with that two-bit observable, so each [(state, pair)] query is a
    table lookup.

    A pair that fails the test at some reachable state is {e racy}:
    the order of [a] and [b] is verdict-relevant there, and the
    analysis concretizes the proof into {e twin traces} — two runs one
    adjacent swap apart (same names, same timestamp slots) whose suite
    verdicts differ, verified by replay on the compiled monitor.  A
    pair that passes at every reachable state {e commutes}: no
    adjacent swap of an [a] against a [b] can ever flip the verdict —
    the pattern-level fact the lateness-robustness certificate
    ({!Robust}) is built from.

    Soundness of the budget: racy verdicts carry replayed witnesses
    and are valid even when exploration or refinement was truncated;
    commuting claims are only made when [complete] is set. *)

open Loseq_core

type race = {
  a : Name.t;
  b : Name.t;  (** the racy unordered pair, [a < b] in {!Name.compare} *)
  trace_ab : Trace.t;  (** prefix, [a], [b], distinguishing suffix *)
  trace_ba : Trace.t;
      (** the same timestamp slots with [a] and [b] swapped — one
          adjacent transposition apart from [trace_ab] *)
  ab_passes : bool;  (** verdict of [trace_ab]; [trace_ba] decides the
                         opposite (verified by replay) *)
  time_divergence : bool;
      (** the verdicts differ only at finalization time (a deadline
          fires on one side): replay with
          [~final_time:(deadline + 1)] *)
}

type result = {
  pattern : Pattern.t;
  complete : bool;
      (** exploration within budget and refinement stabilized: absence
          of a race means the pair really commutes *)
  races : race list;  (** one (shortest-prefix) witness per racy pair *)
  commuting : (Name.t * Name.t) list;
      (** pairs certified to commute (empty unless [complete]) *)
  time_sensitive : bool;
      (** timed only: some reachable configuration is armed with the
          conclusion incomplete — the deadline verdict is live *)
}

val analyze : ?budget:int -> ?refine_rounds:int -> Pattern.t -> result
(** [budget] bounds the exact-counter exploration and each witness
    search (default 200000 states); [refine_rounds] bounds partition
    refinement (default 64 rounds — a cap on distinguishing-suffix
    length; hitting it clears [complete] but keeps every race found).
    Raises {!Loseq_core.Wellformed.Ill_formed}, and [Failure] if a
    witness fails to replay (an abstraction soundness bug, as in
    {!Witness.concretize}). *)

val final_time_for : Pattern.t -> int option
(** The finalization instant twin traces are decided at:
    [Some (deadline + 1)] for a timed pattern (witness timestamps are
    all zero, so any pending deadline has elapsed by then), [None] for
    an antecedent. *)

(** {1 Cross-checker commutation}

    The per-pattern analysis above decides whether {e one} checker's
    verdict is order-sensitive.  Sharding a suite asks a different
    question: may two {e different} checkers observe the events of a
    shared (or interleaved) alphabet in different relative orders
    without the {e pair} of verdicts changing?  That is commutation on
    the synchronous product (cf. {!Suite_checks.product}) of the two
    exact machines over the union alphabet, observed through the pair
    of per-checker fail bits. *)

type product_race = {
  label_a : string;
  label_b : string;  (** the two suite entries of the product *)
  a : Name.t;
  b : Name.t;  (** the racy unordered union-alphabet pair, [a < b] *)
  trace_ab : Trace.t;
  trace_ba : Trace.t;
      (** twin traces one adjacent transposition apart, as in {!race} *)
  ab_verdicts : bool * bool;
      (** ([label_a] passes, [label_b] passes) on [trace_ab], each
          entry replayed under its own {!final_time_for} *)
  ba_verdicts : bool * bool;
      (** the verdict pair on [trace_ba]; differs from [ab_verdicts]
          (verified by replay) *)
}

type product_result = {
  labels : string * string;
  complete : bool;
      (** product exploration within budget, refinement stabilized and
          every cross-relevant pair decided *)
  cross_races : product_race list;
      (** one (shortest-prefix) witness per racy cross-relevant pair *)
  cross_commuting : (Name.t * Name.t) list;
      (** cross-relevant pairs certified to commute on the product
          (empty unless [complete]) *)
  shared : Name.t list;  (** the alphabet intersection, sorted *)
}

val analyze_product :
  ?budget:int ->
  ?refine_rounds:int ->
  string * Pattern.t ->
  string * Pattern.t ->
  product_result
(** [analyze_product (la, pa) (lb, pb)] runs the pairwise test on the
    synchronous product of the two exact machines, restricted to
    {e cross-relevant} pairs: unordered union-alphabet pairs not
    wholly private to one checker (those belong to that checker's own
    {!analyze}).  Budget and failure behaviour as in {!analyze}.  The
    component machines come from the shared {!Memo} table. *)
