(** The analyzer façade: per-pattern and whole-suite semantic analysis,
    reported as {!Loseq_core.Finding} values.

    [analyze_pattern] combines the syntactic linter with the semantic
    decision procedures ({!Checks}); the linter's [tight-deadline]
    heuristic is dropped for timed patterns whenever the exact
    automaton-based deadline verdict is available (it subsumes it).

    [analyze] additionally runs the cross-pattern procedures
    ({!Suite_checks}) over every pair and stamps each finding with the
    suite origin (entry label, file, line) for the SARIF renderer. *)

open Loseq_core

type item = {
  label : string;
  file : string option;
  line : int option;
  pattern : Pattern.t;
}

val item : ?file:string -> ?line:int -> string -> Pattern.t -> item

val analyze_pattern : ?budget:int -> Pattern.t -> Finding.t list
(** Raises {!Wellformed.Ill_formed}. *)

val analyze : ?budget:int -> item list -> Finding.t list
(** Per-item findings (with origins attached) followed by cross-pattern
    findings, in {!Loseq_core.Finding.order}. *)

val rules : (string * string) list
(** SARIF rule table covering every code the analyzer or linter can
    emit (from {!Explain}). *)
