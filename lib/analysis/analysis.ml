open Loseq_core

type item = {
  label : string;
  file : string option;
  line : int option;
  pattern : Pattern.t;
}

let item ?file ?line label pattern = { label; file; line; pattern }

let analyze_pattern ?budget pattern =
  let semantic = Checks.findings ?budget pattern in
  (* The exact deadline verdict replaces the linter's heuristic
     whenever it was actually computed. *)
  let exact_deadline =
    match pattern with
    | Pattern.Timed _ ->
        not
          (List.exists
             (fun (f : Finding.t) -> String.equal f.code "analysis-budget")
             semantic)
    | Pattern.Antecedent _ -> false
  in
  let lint =
    List.filter
      (fun (f : Finding.t) ->
        not (exact_deadline && String.equal f.code "tight-deadline"))
      (Lint.lint pattern)
  in
  Finding.order (semantic @ lint)

let analyze ?budget items =
  let per_item =
    List.concat_map
      (fun it ->
        List.map
          (Finding.with_origin ~subject:it.label ?file:it.file ?line:it.line)
          (analyze_pattern ?budget it.pattern))
      items
  in
  let cross =
    Suite_checks.findings ?budget
      (List.map (fun it -> (it.label, it.pattern)) items)
  in
  let origin_of label =
    List.find_opt (fun it -> String.equal it.label label) items
  in
  (* a cross finding's subject is "label" or "label, label"; anchor the
     location on the first label *)
  let cross =
    List.map
      (fun (f : Finding.t) ->
        match f.subject with
        | None -> f
        | Some s -> (
            let first =
              match String.index_opt s ',' with
              | Some i -> String.sub s 0 i
              | None -> s
            in
            match origin_of (String.trim first) with
            | Some it -> Finding.with_origin ?file:it.file ?line:it.line f
            | None -> f))
      cross
  in
  Finding.order (per_item @ cross)

let rules = Explain.rules
