(** Pattern-directed stimulus drivers.

    {!Stimuli.replay} re-emits abstract events on a tap; a {e driver}
    goes the last mile of the paper's "full integration of
    loose-orderings in an ABV framework": each pattern name is bound to
    a real action (typically a TLM register write), and a kernel process
    executes a pattern-conforming random sequence of those actions with
    loose-timed gaps.  The same pattern then generates the stimulus
    {e and} checks the component's reaction. *)

open Loseq_core
open Loseq_sim

type t

val create : Kernel.t -> t

val bind : t -> string -> (unit -> unit) -> unit
(** Associate a pattern name with the action that performs it.  Actions
    run in process context and may block (e.g. synchronized TLM
    transports).  Rebinding replaces. *)

val bound : t -> Name.t -> bool

exception Unbound of Name.t

val drive :
  ?seed:int ->
  ?rounds:int ->
  ?gap:Time.t * Time.t ->
  t ->
  Pattern.t ->
  unit
(** Spawn a process that generates a satisfying sequence for the pattern
    ({!Loseq_core.Generate.valid}) and performs the bound action of each
    event, waiting a loose-timed [gap] (default 100–300 ns) between
    actions.  Raises {!Unbound} immediately if some alphabet name has no
    binding, and {!Wellformed.Ill_formed} on a bad pattern.

    Note: the generated sequence satisfies the pattern's {e ordering};
    with a timed pattern, whether deadlines hold depends on the gaps and
    the actions' own delays — that is the device's job to honour and the
    checker's job to judge. *)

val drive_sequence : ?gap:Time.t * Time.t -> t -> Name.t list -> unit
(** Drive an explicit sequence (e.g. a mutated, violating one). *)

val drive_monitored :
  ?backend:Backend.factory ->
  ?mode:Monitor.mode ->
  ?seed:int ->
  ?rounds:int ->
  ?gap:Time.t * Time.t ->
  t ->
  Tap.t ->
  Pattern.t ->
  Checker.t
(** {!drive}, closed-loop: attaches a checker for the pattern on [tap]
    (backend defaults to {!Loseq_core.Backend.compiled}) before
    spawning the driver process, and returns it.  Alphabet names
    without a binding are bound to emit the abstract event on [tap],
    so the generated stimulus is observable out of the box; explicit
    bindings (real TLM actions) are left untouched and must emit on
    the tap themselves to be seen by the checker. *)

val actions_performed : t -> int
