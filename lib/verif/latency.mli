(** Event-to-event latency analysis.

    The deadline [t] of a timed implication constraint has to come from
    somewhere: this module measures, online or offline, the time from a
    round's last [from] event to its first [until] event (e.g.
    [start → set_irq]) and summarizes the distribution, so that [T] can
    be chosen with a known margin over observed behaviour. *)

open Loseq_core
open Loseq_sim

val intervals : from:Name.t -> until:Name.t -> Trace.t -> int list
(** Offline: for every [until] event, the distance (in trace time units)
    from the latest [from] event seen since the previous [until];
    [until]s with no pending [from] are skipped. *)

type summary = {
  count : int;
  min_ps : int;
  max_ps : int;
  mean_ps : float;
  p50_ps : int;
  p90_ps : int;
}

val summarize : int list -> summary option
(** [None] on an empty sample. *)

val percentile : int list -> float -> int
(** Nearest-rank percentile; raises [Invalid_argument] on an empty list
    or a fraction outside [0, 1]. *)

val suggest_deadline : ?slack:float -> int list -> int option
(** Max observed latency padded by [slack] (default 0.5, i.e. +50%). *)

val pp_summary : Format.formatter -> summary -> unit

(** {1 Online collection} *)

type t

val create : from:Name.t -> until:Name.t -> Tap.t -> t
(** Subscribe to the tap and collect intervals as the simulation runs. *)

val durations : t -> int list
(** Collected so far, oldest first. *)

val summary : t -> summary option

val watch : t -> threshold:Time.t -> (int -> unit) -> unit
(** Invoke the callback (with the interval) whenever a measured latency
    exceeds the threshold — a soft variant of a timed-implication
    monitor, useful while tuning [T]. *)
