open Loseq_core
open Loseq_sim

(* Subscribers live in growable arrays kept in subscription order, so
   [emit] walks them front to back without reversing (or allocating)
   anything per event. *)
type subscribers = {
  mutable fns : (Trace.event -> unit) array;
  mutable len : int;
}

let subs_empty () = { fns = [||]; len = 0 }

let subs_add s f =
  let cap = Array.length s.fns in
  if s.len = cap then begin
    let fns = Array.make (max 4 (2 * cap)) f in
    Array.blit s.fns 0 fns 0 s.len;
    s.fns <- fns
  end;
  s.fns.(s.len) <- f;
  s.len <- s.len + 1

let subs_iter s event =
  for i = 0 to s.len - 1 do
    s.fns.(i) event
  done

type t = {
  kernel : Kernel.t;
  record : bool;
  mutable events_rev : Trace.event list;
  all : subscribers;
  (* per-name routing: names interned once per tap into dense ids *)
  ids : (Name.t, int) Hashtbl.t;
  mutable by_name : subscribers array;  (* indexed by interned id *)
  mutable count : int;
}

let create ?(record = true) kernel =
  {
    kernel;
    record;
    events_rev = [];
    all = subs_empty ();
    ids = Hashtbl.create 16;
    by_name = [||];
    count = 0;
  }

let kernel t = t.kernel
let now_ps t = Time.to_ps (Kernel.now t.kernel)

let intern t name =
  match Hashtbl.find_opt t.ids name with
  | Some id -> id
  | None ->
      let id = Hashtbl.length t.ids in
      Hashtbl.replace t.ids name id;
      if id >= Array.length t.by_name then begin
        let grown =
          Array.init
            (max 8 (2 * Array.length t.by_name))
            (fun i ->
              if i < Array.length t.by_name then t.by_name.(i)
              else subs_empty ())
        in
        t.by_name <- grown
      end;
      id

let emit_name t name =
  let event = { Trace.name; time = now_ps t } in
  t.count <- t.count + 1;
  if t.record then t.events_rev <- event :: t.events_rev;
  subs_iter t.all event;
  match Hashtbl.find t.ids name with
  | id -> subs_iter t.by_name.(id) event
  | exception Not_found -> ()

let emit t s = emit_name t (Name.v s)

(* A pre-bound emission port: the name is interned at bind time, so
   per-event emission skips the name hash entirely.  [t.by_name] must
   be re-read on every call — interning another name may replace the
   backing array. *)
let port t name =
  let id = intern t name in
  fun () ->
    let event = { Trace.name; time = now_ps t } in
    t.count <- t.count + 1;
    if t.record then t.events_rev <- event :: t.events_rev;
    subs_iter t.all event;
    subs_iter t.by_name.(id) event
let subscribe t f = subs_add t.all f

let subscribe_name t name f =
  let id = intern t name in
  subs_add t.by_name.(id) f

let trace t = List.rev t.events_rev
let count t = t.count
