open Loseq_core
open Loseq_sim

type t = {
  kernel : Kernel.t;
  record : bool;
  mutable events_rev : Trace.event list;
  mutable subscribers : (Trace.event -> unit) list;
  mutable count : int;
}

let create ?(record = true) kernel =
  { kernel; record; events_rev = []; subscribers = []; count = 0 }

let kernel t = t.kernel
let now_ps t = Time.to_ps (Kernel.now t.kernel)

let emit_name t name =
  let event = { Trace.name; time = now_ps t } in
  t.count <- t.count + 1;
  if t.record then t.events_rev <- event :: t.events_rev;
  List.iter (fun f -> f event) (List.rev t.subscribers)

let emit t s = emit_name t (Name.v s)
let subscribe t f = t.subscribers <- f :: t.subscribers
let trace t = List.rev t.events_rev
let count t = t.count
