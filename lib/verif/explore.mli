(** Coverage-driven stimuli search — the "Coverage Improver" box of the
    verification framework (paper, Fig. 1).

    Random stimuli rarely inhabit every recognizer state (deep counting
    states, disjunctive skips, ...).  This module searches the seed
    space of the pattern-driven generator, scores each candidate trace
    by the recognizer states it inhabits, and greedily assembles a small
    set of seeds whose {e union} maximizes coverage — the regression set
    a verification engineer would keep. *)

open Loseq_core

type candidate = {
  seed : int;
  rounds : int;
  coverage : float;  (** single-trace state coverage *)
  events : int;
}

type result = {
  best : candidate;  (** highest single-trace coverage *)
  selected : candidate list;
      (** greedy set whose union achieves [achieved] *)
  achieved : float;  (** union state coverage of [selected] *)
  tried : int;
}

val score : ?backend:Backend.factory -> Pattern.t -> Trace.t -> Coverage.t
(** Run a monitor backend over the trace and collect its state
    coverage.  Defaults to the structural monitor
    ({!Loseq_core.Backend.direct}) — backends without the [states]
    capability (e.g. compiled) still collect event coverage, but no
    recognizer-state coverage. *)

val search :
  ?backend:Backend.factory ->
  ?budget:int ->
  ?max_rounds:int ->
  Pattern.t ->
  result
(** Try [budget] (default 64) generator seeds, each with 1..[max_rounds]
    (default 3) recognition rounds.  Raises {!Wellformed.Ill_formed} on
    an ill-formed pattern. *)

val pp_result : Format.formatter -> result -> unit
