open Loseq_core

type candidate = {
  seed : int;
  rounds : int;
  coverage : float;
  events : int;
}

type result = {
  best : candidate;
  selected : candidate list;
  achieved : float;
  tried : int;
}

let score ?(backend = fun p -> Backend.direct p) p trace =
  let coverage = Coverage.create p in
  let b = backend p in
  let observe () =
    match b.Backend.states with
    | Some states -> Coverage.observe_states coverage (states ())
    | None -> ()
  in
  observe ();
  List.iter
    (fun e ->
      Coverage.observe_event coverage e;
      ignore (b.Backend.step e);
      observe ())
    trace;
  coverage

module Pair_set = Set.Make (struct
  type t = int * string

  let compare = compare
end)

let search ?backend ?(budget = 64) ?(max_rounds = 3) p =
  Wellformed.check_exn p;
  if budget <= 0 then invalid_arg "Explore.search: budget must be positive";
  let candidates =
    List.init budget (fun seed ->
        let rounds = 1 + (seed mod max_rounds) in
        let rng = Random.State.make [| seed |] in
        let trace = Generate.valid ~rounds rng p in
        let coverage = score ?backend p trace in
        ( {
            seed;
            rounds;
            coverage = Coverage.states_covered coverage;
            events = Trace.length trace;
          },
          Pair_set.of_list (Coverage.visited coverage),
          Coverage.reachable coverage ))
  in
  let best =
    List.fold_left
      (fun acc (c, _, _) ->
        if c.coverage > acc.coverage then c else acc)
      (let c, _, _ = List.hd candidates in
       c)
      candidates
  in
  let reachable =
    match candidates with (_, _, r) :: _ -> max 1 r | [] -> 1
  in
  (* Greedy set cover over the visited-state sets. *)
  let rec pick chosen covered remaining =
    let gain (_, states, _) =
      Pair_set.cardinal (Pair_set.diff states covered)
    in
    match
      List.filter (fun c -> gain c > 0) remaining
      |> List.sort (fun a b -> compare (gain b) (gain a))
    with
    | [] -> (List.rev chosen, covered)
    | ((c, states, _) as winner) :: _ ->
        pick (c :: chosen)
          (Pair_set.union covered states)
          (List.filter (fun x -> x != winner) remaining)
  in
  let selected, covered = pick [] Pair_set.empty candidates in
  {
    best;
    selected;
    achieved = float_of_int (Pair_set.cardinal covered) /. float_of_int reachable;
    tried = budget;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>tried %d seeds; best single trace covers %.0f%% (seed %d, %d \
     round(s), %d events)@,%d trace(s) selected for %.0f%% combined \
     coverage:@]"
    r.tried
    (100. *. r.best.coverage)
    r.best.seed r.best.rounds r.best.events (List.length r.selected)
    (100. *. r.achieved);
  List.iter
    (fun c ->
      Format.fprintf ppf "@,  seed %-6d %d round(s), %3d events, %.0f%%"
        c.seed c.rounds c.events (100. *. c.coverage))
    r.selected
