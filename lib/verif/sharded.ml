open Loseq_core
module Kernel = Loseq_sim.Kernel
module Time = Loseq_sim.Time

type host = {
  members : int array;
  kernel : Kernel.t;
  tap : Tap.t;
  checkers : Checker.t array;
  alphabet : Name.Set.t;
}

let validate_plan plan n =
  let seen = Array.make n false in
  List.iter
    (List.iter (fun i ->
         if i < 0 || i >= n then
           invalid_arg "Sharded.run: plan names a checker out of range";
         if seen.(i) then
           invalid_arg "Sharded.run: plan lists a checker twice";
         seen.(i) <- true))
    plan;
  Array.iteri
    (fun i covered ->
      if not covered then
        invalid_arg
          (Printf.sprintf "Sharded.run: plan misses checker %d" i))
    seen

let run ?metrics ?final_time ~plan suite trace =
  let entries = Array.of_list (Suite.entries_of suite) in
  let n = Array.length entries in
  validate_plan plan n;
  let eng = Flat.compile (Array.to_list entries) in
  let hosts =
    List.filter_map
      (fun members ->
        match members with
        | [] -> None
        | _ ->
            (* The shard's engine is a slice of the suite's slab; its
               hub re-interns only the slice's names. *)
            let sub = Flat.slice eng members in
            let views = Backend.flat_engine_views sub in
            let kernel = Kernel.create () in
            let tap = Tap.create ~record:false kernel in
            let hub = Hub.create ?metrics tap in
            let checkers = Array.of_list (Hub.host_flat hub sub views) in
            let alphabet =
              List.fold_left
                (fun acc i ->
                  Name.Set.union acc (Pattern.alpha (snd entries.(i))))
                Name.Set.empty members
            in
            Some { members = Array.of_list members; kernel; tap; checkers;
                   alphabet })
      plan
  in
  (* Deliver in trace order, each event only to the shards whose
     alphabet slice contains it; each shard's private kernel advances
     first so its deadline wheel fires en route, exactly as in a live
     simulation. *)
  List.iter
    (fun (e : Trace.event) ->
      List.iter
        (fun h ->
          if Name.Set.mem e.name h.alphabet then begin
            let until = Time.ps e.time in
            if Time.( < ) (Kernel.now h.kernel) until then
              Kernel.run ~until h.kernel;
            Tap.emit_name h.tap e.name
          end)
        hosts)
    trace;
  (* The sequencer stub: finalize every shard at the full trace's end
     time and merge verdicts back into suite order. *)
  let now =
    match final_time with Some t -> t | None -> Trace.end_time trace
  in
  let verdicts = Array.make n true in
  List.iter
    (fun h ->
      let until = Time.ps now in
      if Time.( < ) (Kernel.now h.kernel) until then Kernel.run ~until h.kernel;
      Array.iteri
        (fun k i ->
          verdicts.(i) <-
            Backend.passed (Checker.finalize_at ~now h.checkers.(k)))
        h.members)
    hosts;
  Array.to_list (Array.mapi (fun i (label, _) -> (label, verdicts.(i))) entries)
