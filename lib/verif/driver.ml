open Loseq_core
open Loseq_sim

type t = {
  kernel : Kernel.t;
  bindings : (Name.t, unit -> unit) Hashtbl.t;
  mutable performed : int;
}

exception Unbound of Name.t

let () =
  Printexc.register_printer (function
    | Unbound n -> Some (Printf.sprintf "Driver.Unbound %S" (Name.to_string n))
    | _ -> None)

let create kernel = { kernel; bindings = Hashtbl.create 16; performed = 0 }
let bind t name action = Hashtbl.replace t.bindings (Name.v name) action
let bound t name = Hashtbl.mem t.bindings name

let action_of t name =
  match Hashtbl.find_opt t.bindings name with
  | Some action -> action
  | None -> raise (Unbound name)

let default_gap = (Time.ns 100, Time.ns 300)

let drive_sequence ?(gap = default_gap) t names =
  (* Check bindings eagerly so Unbound surfaces at call time, not in the
     middle of a simulation. *)
  List.iter (fun name -> ignore (action_of t name : unit -> unit)) names;
  let lo, hi = gap in
  Kernel.spawn ~name:"driver" t.kernel (fun () ->
      List.iter
        (fun name ->
          Kernel.wait_loose t.kernel lo hi;
          (action_of t name) ();
          t.performed <- t.performed + 1)
        names)

let drive ?(seed = 0xd21e) ?(rounds = 3) ?gap t p =
  Wellformed.check_exn p;
  Name.Set.iter
    (fun name -> ignore (action_of t name : unit -> unit))
    (Pattern.alpha p);
  let rng = Random.State.make [| seed |] in
  let trace = Generate.valid ~rounds rng p in
  drive_sequence ?gap t (Trace.names trace)

let drive_monitored ?backend ?mode ?seed ?rounds ?gap t tap p =
  Wellformed.check_exn p;
  (* Alphabet names without an explicit binding default to emitting the
     abstract event on the tap, so the generated stimulus is observable
     even before the design is wired in. *)
  Name.Set.iter
    (fun name ->
      if not (Hashtbl.mem t.bindings name) then
        Hashtbl.replace t.bindings name (fun () -> Tap.emit_name tap name))
    (Pattern.alpha p);
  let checker = Checker.attach ?backend ?mode tap p in
  drive ?seed ?rounds ?gap t p;
  checker

let actions_performed t = t.performed
