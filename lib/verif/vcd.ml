open Loseq_core

(* VCD identifier codes: short strings over the printable range. *)
let code_of_index i =
  let base = 94 and first = 33 in
  let rec loop i acc =
    let chr = Char.chr (first + (i mod base)) in
    let acc = String.make 1 chr ^ acc in
    if i < base then acc else loop ((i / base) - 1) acc
  in
  loop i ""

let of_trace ?(timescale = "1ps") ?(scope = "loseq") trace =
  let buf = Buffer.create 4096 in
  let names =
    List.fold_left
      (fun acc (e : Trace.event) -> Name.Set.add e.name acc)
      Name.Set.empty trace
    |> Name.Set.elements
  in
  let codes = Hashtbl.create 16 in
  List.iteri (fun i nm -> Hashtbl.replace codes nm (code_of_index i)) names;
  Buffer.add_string buf "$version loseq trace dump $end\n";
  Buffer.add_string buf (Printf.sprintf "$timescale %s $end\n" timescale);
  Buffer.add_string buf (Printf.sprintf "$scope module %s $end\n" scope);
  List.iter
    (fun nm ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire 1 %s %s $end\n" (Hashtbl.find codes nm)
           (Name.to_string nm)))
    names;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  (* Change list: pulse each wire high at the event time, low one unit
     later; a new occurrence at the falling instant keeps it high. *)
  let changes = Hashtbl.create 64 in
  let add time nm value =
    let current = Option.value ~default:[] (Hashtbl.find_opt changes time) in
    Hashtbl.replace changes time ((nm, value) :: current)
  in
  List.iter
    (fun (e : Trace.event) ->
      add e.time e.name true;
      add (e.time + 1) e.name false)
    trace;
  let times = Hashtbl.fold (fun t _ acc -> t :: acc) changes [] in
  (* Initial values. *)
  Buffer.add_string buf "$dumpvars\n";
  List.iter
    (fun nm ->
      Buffer.add_string buf (Printf.sprintf "0%s\n" (Hashtbl.find codes nm)))
    names;
  Buffer.add_string buf "$end\n";
  List.iter
    (fun time ->
      Buffer.add_string buf (Printf.sprintf "#%d\n" time);
      let entries = Hashtbl.find changes time in
      (* A rising edge at this instant wins over a scheduled fall. *)
      let rising =
        List.filter_map (fun (nm, v) -> if v then Some nm else None) entries
      in
      let falling =
        List.filter_map
          (fun (nm, v) ->
            if (not v) && not (List.exists (Name.equal nm) rising) then
              Some nm
            else None)
          entries
      in
      let emit value nm =
        Buffer.add_string buf
          (Printf.sprintf "%c%s\n"
             (if value then '1' else '0')
             (Hashtbl.find codes nm))
      in
      List.iter (emit false) (List.sort_uniq Name.compare falling);
      List.iter (emit true) (List.sort_uniq Name.compare rising))
    (List.sort compare times);
  Buffer.contents buf

let write ~path ?timescale ?scope trace =
  let oc = open_out path in
  output_string oc (of_trace ?timescale ?scope trace);
  close_out oc
