(** Verdict provenance: the minimal causal chain behind a Fail.

    A verdict record saying [recognition_deadline: Fail] answers
    {e what}; provenance answers {e why}: which events advanced the
    recognizer into the failing configuration, which deadline fired,
    and when.  The recorder keeps, per suite entry, a bounded ring of
    the most recent events in that entry's alphabet (everything the
    recognizer saw); when the entry's checker reports a violation the
    ring is frozen at that instant together with the diagnostic.  The
    chain is then
    {e minimized} by greedy delta-debugging — drop one event at a
    time, replay the candidate with {!Suite.check_trace}, keep the
    drop when the entry still fails — so the reported chain is
    1-minimal: removing any single event makes the failure disappear.

    Minimized chains are attached to failed verdict NDJSON records by
    [serve] and replayed standalone by [loseq explain-verdict] (the
    CI gate replays each chain on the compiled {e and} flat backends
    and requires the same Fail). *)

open Loseq_core

type link = { time : int; name : Name.t }
(** One chain element: an event that reached the recognizer. *)

(** {1 The recorder} *)

type t

val create : ?depth:int -> Tap.t -> Suite.t -> t
(** Attach a recorder to [tap]: one per-name subscription over each
    entry's alphabet feeds that entry's ring (default [depth] 64,
    rounded up to a power of two).  Works under any hosting backend —
    capture is tap-level, so flat hosting (where checkers never see
    individual deliveries) records identically. *)

val create_detached : ?depth:int -> Suite.t -> t
(** A recorder with no tap subscriptions — for hosts that do not route
    through a tap (the speculative engine): feed it with
    {!record}. *)

val record : t -> time:int -> Name.t -> unit
(** Manually feed one event into every matching entry ring (no-op for
    names outside all alphabets).  Only needed after
    {!create_detached}. *)

val note_violation : t -> label:string -> Diag.violation -> unit
(** Freeze [label]'s ring at the violation instant: events after that
    time no longer enter it, so the captured chain survives later
    traffic.  The cut is by time, not an eager snapshot — the hook
    fires {e inside} the offending event's tap delivery, and the
    recorder's own subscription (which runs after the checker's) must
    still land that event.  First violation wins.  Unknown labels are
    ignored. *)

val clear_violation : t -> label:string -> unit
(** Withdraw a freeze — the speculative engine retracting a violation
    a late event repaired. *)

val violation_of : t -> string -> Diag.violation option

val seen : t -> (string * int) list
(** Per entry, the number of events observed in its alphabet since
    creation (not bounded by the ring depth) — the measured per-checker
    load {!Loseq_obs.Profile.render} wants, uniform across hosting
    backends because capture is tap-level. *)

val captured : t -> string -> link list
(** [label]'s chain, chronological: cut at the violation instant when
    one was noted, the current ring contents otherwise ([[]] for
    unknown labels). *)

(** {1 Minimization and replay} *)

val replay :
  ?backend:Backend.factory ->
  final_time:int ->
  label:string ->
  Pattern.t ->
  link list ->
  bool
(** Run the entry alone over the chain (chronologically sorted),
    finalized at [final_time]; [true] when it passes. *)

val minimize :
  ?backend:Backend.factory ->
  final_time:int ->
  label:string ->
  Pattern.t ->
  link list ->
  link list
(** Greedy 1-minimal reduction of a failing chain: each event is
    dropped in turn and the drop kept when the entry still fails at
    [final_time].  A chain that does not fail to begin with is
    returned unchanged.  At most [O(n^2)] replays of at most [n]
    events, with [n] bounded by the recorder depth. *)

(** {1 Rendering} *)

val chain_json : ?violation:Diag.violation -> link list -> Json.t
(** [{"chain":[{"time":..,"name":..},..],"deadline":{..}?,
    "reason":..?,"violation_time":..?}] — the ["deadline"] object
    (started/deadline/now) is present exactly for deadline misses. *)

val chain_of_json : Json.t -> (link list, string) result
(** Parse back what {!chain_json} emitted (the ["chain"] array);
    tolerates the enclosing verdict-record object by looking up
    ["provenance"] first when present. *)
