open Loseq_core
open Loseq_sim

(* ---- merged deadline wheel -------------------------------------------- *)

(* A binary min-heap of (deadline, entry) with lazy invalidation: an
   entry records the deadline it is currently armed for; stale heap
   items (the entry re-armed or disarmed since the push) are dropped
   when they surface.  One kernel timeout is kept scheduled at the heap
   minimum — however many timed checkers the hub hosts. *)

type entry = { checker : Checker.t; mutable armed : int (* -1 = unarmed *) }

module Wheel = struct
  type t = {
    mutable heap : (int * entry) array;
    mutable len : int;
  }

  let create () = { heap = [||]; len = 0 }

  let swap h i j =
    let tmp = h.heap.(i) in
    h.heap.(i) <- h.heap.(j);
    h.heap.(j) <- tmp

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if fst h.heap.(i) < fst h.heap.(parent) then begin
        swap h i parent;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.len && fst h.heap.(l) < fst h.heap.(!smallest) then smallest := l;
    if r < h.len && fst h.heap.(r) < fst h.heap.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap h i !smallest;
      sift_down h !smallest
    end

  let push h deadline entry =
    if h.len = Array.length h.heap then begin
      (* Grow, filling fresh slots with the pushed item (never read
         beyond [len]). *)
      let grown = Array.make (max 8 (2 * h.len)) (deadline, entry) in
      Array.blit h.heap 0 grown 0 h.len;
      h.heap <- grown
    end;
    h.heap.(h.len) <- (deadline, entry);
    h.len <- h.len + 1;
    sift_up h (h.len - 1)

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.heap.(0) in
      h.len <- h.len - 1;
      h.heap.(0) <- h.heap.(h.len);
      sift_down h 0;
      Some top
    end

  (* Smallest non-stale deadline, dropping stale items on the way. *)
  let rec min_live h =
    if h.len = 0 then None
    else
      let deadline, entry = h.heap.(0) in
      if entry.armed = deadline then Some deadline
      else begin
        ignore (pop h);
        min_live h
      end
end

(* ---- telemetry --------------------------------------------------------- *)

(* Present only when the hub was created with a live metrics sink; the
   default (noop) hub carries [None] and pays one predictable branch per
   delivery.  Dispatch latency is sampled (one delivery in 64) so the
   clock reads stay far below the paper's per-event monitor cost. *)
module Obs = Loseq_obs.Metrics
module Tr = Loseq_obs.Trace

(* Flight-recorder categories, interned once at hub creation.  Dispatch
   spans ride the latency-sampled path and reuse its two clock reads
   (emit_at with the already-read stamps), so tracing adds zero clock
   reads to the event path; deadline firings and wheel-depth samples
   are rare enough to stamp directly. *)
type trc = {
  tr : Tr.t;
  tr_dispatch : Tr.cat;
  tr_firing : Tr.cat;
  tr_wheel : Tr.cat;
}

let make_trc trace =
  {
    tr = trace;
    tr_dispatch = Tr.intern trace ~track:"hub" "dispatch";
    tr_firing = Tr.intern trace ~track:"hub" "deadline_fire";
    tr_wheel = Tr.intern trace ~track:"hub" "wheel_depth";
  }

(* The sampling mask: 1-in-[rate] with [rate] rounded up to a power of
   two, so the phase test stays one [land]. *)
let sample_mask rate =
  if rate < 1 then invalid_arg "Hub: latency_sample_rate must be >= 1";
  let rec up k = if k >= rate then k else up (k * 2) in
  up 1 - 1

let default_sample_rate = 64

type obs = {
  metrics : Obs.t;
  dispatched : Obs.counter;  (* events entering the hub's tap *)
  satisfied : Obs.counter;
  violated : Obs.counter;
  wheel_depth : Obs.gauge;
  firings : Obs.counter;
  dispatch_ns : Obs.histogram;
  mutable rebase : (unit -> unit) list;
      (* re-baseline hooks for read-time delta counters, run by
         [resync] after an external state restore *)
}

let latency_buckets =
  [| 100; 250; 500; 1_000; 2_500; 5_000; 10_000; 50_000; 250_000; 1_000_000 |]

let make_obs metrics tap =
  let dispatched =
    Obs.counter metrics ~name:"loseq_events_dispatched_total"
      ~help:"Events entering the hub (one per tap emission)" ()
  in
  (* The tap already counts every emission (including names no checker
     listens to), so the hub mirrors it at read time instead of paying
     an extra subscription on every event. *)
  Obs.on_collect metrics (fun () -> Obs.set_counter dispatched (Tap.count tap));
  {
    metrics;
    dispatched;
    satisfied =
      Obs.counter metrics ~name:"loseq_checker_transitions_total"
        ~help:"Checker verdict transitions"
        ~labels:[ ("verdict", "satisfied") ]
        ();
    violated =
      Obs.counter metrics ~name:"loseq_checker_transitions_total"
        ~help:"Checker verdict transitions"
        ~labels:[ ("verdict", "violated") ]
        ();
    wheel_depth =
      Obs.gauge metrics ~name:"loseq_hub_wheel_depth"
        ~help:"Deadline-wheel heap depth (live + stale entries)" ();
    firings =
      Obs.counter metrics ~name:"loseq_hub_deadline_firings_total"
        ~help:"Deadline expiries polled through the merged wheel" ();
    dispatch_ns =
      Obs.histogram metrics ~name:"loseq_hub_dispatch_ns"
        ~help:"Per-dispatch latency in nanoseconds (sampled 1 in 64)"
        ~buckets:latency_buckets ();
    rebase = [];
  }

type t = {
  tap : Tap.t;
  mutable entries_rev : entry list;
  wheel : Wheel.t;
  mutable scheduled : (int * Kernel.handle) option;
      (* deadline the kernel timeout is parked at *)
  obs : obs option;
  trc : trc option;
}

let create ?(metrics = Obs.noop) ?(trace = Tr.noop) tap =
  {
    tap;
    entries_rev = [];
    wheel = Wheel.create ();
    scheduled = None;
    obs = (if Obs.is_live metrics then Some (make_obs metrics tap) else None);
    trc = (if Tr.is_live trace then Some (make_trc trace) else None);
  }

let tap t = t.tap
let checkers t = List.rev_map (fun e -> e.checker) t.entries_rev
let size t = List.length t.entries_rev

(* Keep the single kernel timeout parked at the wheel's live minimum. *)
let rec settle t =
  match Wheel.min_live t.wheel with
  | None -> (
      match t.scheduled with
      | Some (_, handle) ->
          Kernel.cancel handle;
          t.scheduled <- None
      | None -> ())
  | Some deadline -> (
      match t.scheduled with
      | Some (at, _) when at = deadline -> ()
      | Some (_, handle) ->
          Kernel.cancel handle;
          t.scheduled <- None;
          settle t
      | None ->
          let kernel = Tap.kernel t.tap in
          let at = Time.ps (deadline + 1) in
          if Time.( < ) (Kernel.now kernel) at then
            t.scheduled <-
              Some (deadline, Kernel.schedule_at kernel ~at (fun () -> fire t))
          else begin
            (* Already past: expire it now rather than scheduling in the
               past. *)
            expire t;
            settle t
          end)

(* Poll every armed checker whose deadline has elapsed ([check_time]
   reports a miss when [now > deadline]); stale heap items are dropped,
   live future items are put back untouched. *)
and expire t =
  let now = Tap.now_ps t.tap in
  let rec drain () =
    match Wheel.pop t.wheel with
    | None -> ()
    | Some (d, entry) ->
        if entry.armed <> d then drain () (* stale *)
        else if d >= now then Wheel.push t.wheel d entry
        else begin
          entry.armed <- -1;
          (match t.obs with
          | Some o -> Obs.incr o.firings
          | None -> ());
          (match t.trc with
          | Some c -> Tr.emit c.tr c.tr_firing Tr.Instant d
          | None -> ());
          Checker.poll entry.checker ~now;
          rearm t entry;
          drain ()
        end
  in
  drain ()

and fire t =
  t.scheduled <- None;
  expire t;
  settle t;
  (match t.trc with
  | Some c -> Tr.emit c.tr c.tr_wheel Tr.Count t.wheel.Wheel.len
  | None -> ());
  match t.obs with
  | Some o -> Obs.set o.wheel_depth t.wheel.Wheel.len
  | None -> ()

and rearm t entry =
  match Checker.next_deadline entry.checker with
  | None -> entry.armed <- -1
  | Some deadline ->
      if entry.armed <> deadline then begin
        entry.armed <- deadline;
        Wheel.push t.wheel deadline entry
      end

let after_delivery t entry =
  rearm t entry;
  settle t

(* With a live sink, every hosted checker contributes to the transition
   counters: satisfied rounds through the step-path transition hook,
   violations through the once-per-checker violation hook (which also
   covers deadline-driven misses the step hook never sees). *)
let observe_checker o checker =
  Checker.on_transition checker (fun ~before ~after ->
      match (before, after) with
      | Backend.Running, Backend.Satisfied -> Obs.incr o.satisfied
      | _, (Backend.Running | Backend.Satisfied | Backend.Violated _) -> ());
  Checker.on_violation checker (fun _ -> Obs.incr o.violated)

let host ?(latency_sample_rate = default_sample_rate) t checker ~strict =
  let mask = sample_mask latency_sample_rate in
  let entry = { checker; armed = -1 } in
  t.entries_rev <- entry :: t.entries_rev;
  let backend = Checker.backend checker in
  (match t.obs with
  | None -> ()
  | Some o ->
      observe_checker o checker;
      (* Hosted monitor steps are exactly the deliveries this hub
         routes, and the checker already counts those in [events_seen]:
         mirror it into the per-flavor family as a delta at read time
         (delta, so other writers of the family keep their share). *)
      let steps =
        Obs.counter o.metrics ~name:"loseq_backend_steps_total"
          ~help:"Monitor steps executed, by backend flavor"
          ~labels:[ ("backend", backend.Backend.label) ]
          ()
      in
      let last = ref 0 in
      Obs.on_collect o.metrics (fun () ->
          let seen = Checker.events_seen checker in
          Obs.add steps (seen - !last);
          last := seen);
      (* A checkpoint restore sets [events_seen] to the historical
         total; re-baselining keeps that jump out of the step counter
         (no steps ran in this process for those events). *)
      o.rebase <- (fun () -> last := Checker.events_seen checker) :: o.rebase);
  if strict then
    Tap.subscribe t.tap (fun e ->
        Checker.deliver checker e;
        after_delivery t entry)
  else
    Name.Set.iter
      (fun n ->
        let handler = Checker.routed checker n in
        match (t.obs, t.trc) with
        | None, None ->
            Tap.subscribe_name t.tap n (fun e ->
                handler e;
                after_delivery t entry)
        | obs, trc ->
            (* The just-bumped deliveries count doubles as the 1-in-N
               latency sampling phase — no separate phase cell (a local
               cell stands in when only the flight recorder is live).
               The clock is CLOCK_MONOTONIC in nanoseconds (immune to
               NTP steps, fine enough for the sub-microsecond
               buckets). *)
            let sampled =
              match obs with
              | Some o ->
                  let deliveries =
                    Obs.counter o.metrics ~name:"loseq_hub_deliveries_total"
                      ~help:"Routed checker deliveries, by event name"
                      ~labels:[ ("name", Name.to_string n) ]
                      ()
                  in
                  fun () ->
                    Obs.incr deliveries;
                    Obs.counter_value deliveries land mask = 0
              | None ->
                  let phase = ref 0 in
                  fun () ->
                    incr phase;
                    !phase land mask = 0
            in
            Tap.subscribe_name t.tap n (fun e ->
                if sampled () then begin
                  let t0 = Monotonic_clock.now () in
                  (* span begin goes in before the work so records the
                     handler emits (deadline firings) nest inside it in
                     ring order — the ring must stay time-sorted *)
                  (match trc with
                  | Some c ->
                      Tr.emit_at c.tr ~ts_ns:(Int64.to_int t0) c.tr_dispatch
                        Tr.Span_begin 0
                  | None -> ());
                  handler e;
                  after_delivery t entry;
                  let t1 = Monotonic_clock.now () in
                  (match obs with
                  | Some o ->
                      Obs.set o.wheel_depth t.wheel.Wheel.len;
                      Obs.observe o.dispatch_ns
                        (Int64.to_int (Int64.sub t1 t0))
                  | None -> ());
                  match trc with
                  | Some c ->
                      Tr.emit_at c.tr ~ts_ns:(Int64.to_int t1) c.tr_dispatch
                        Tr.Span_end
                        (Int64.to_int (Int64.sub t1 t0))
                  | None -> ()
                end
                else begin
                  handler e;
                  after_delivery t entry
                end))
      backend.Backend.alphabet;
  after_delivery t entry;
  match t.obs with
  | Some o -> Obs.set o.wheel_depth t.wheel.Wheel.len
  | None -> ()

(* ---- engine-direct hosting --------------------------------------------- *)

(* Host a whole [Flat] engine: one tap subscription per interned name
   steps the engine's CSR dispatch row directly — no per-checker
   closure chain, no per-delivery checker bookkeeping.  Checker views
   exist only for reports, finalization and hooks; verdict decisions
   reach them through the engine's notify callback.  The deadline
   wheel is resettled only when the engine's deadline generation
   moves, so the steady-state event path is step + one int compare. *)
let host_flat ?(latency_sample_rate = default_sample_rate) t eng views =
  let mask = sample_mask latency_sample_rate in
  let module Flat = Loseq_core.Flat in
  let checkers =
    Array.mapi
      (fun ck view ->
        Checker.make ~name:(Flat.label eng ck)
          ~now:(fun () -> Tap.now_ps t.tap)
          view)
      views
  in
  let entries =
    Array.map (fun checker -> { checker; armed = -1 }) checkers
  in
  Array.iter (fun e -> t.entries_rev <- e :: t.entries_rev) entries;
  (match t.obs with
  | None -> ()
  | Some o ->
      Array.iter (observe_checker o) checkers;
      (* The engine's own step index is the steps source — these
         checkers never see deliveries. *)
      let steps =
        Obs.counter o.metrics ~name:"loseq_backend_steps_total"
          ~help:"Monitor steps executed, by backend flavor"
          ~labels:[ ("backend", "flat") ]
          ()
      in
      let last = ref 0 in
      Obs.on_collect o.metrics (fun () ->
          let seen = Flat.steps_total eng in
          Obs.add steps (seen - !last);
          last := seen);
      o.rebase <- (fun () -> last := Flat.steps_total eng) :: o.rebase);
  Flat.set_notify eng
    (Some
       (fun ck ->
         (match t.obs with
         | Some o when Flat.verdict_code eng ck = 1 -> Obs.incr o.satisfied
         | Some _ | None -> ());
         (* violations reach the hooks (and the violated counter set up
            by [observe_checker]) through the checker, exactly once *)
         Checker.sync_external checkers.(ck)));
  let timed = Flat.timed_checkers eng in
  let last_gen = ref (-1) in
  let resettle () =
    Array.iter (fun ck -> rearm t entries.(ck)) timed;
    settle t;
    last_gen := Flat.deadline_generation eng;
    (match t.trc with
    | Some c -> Tr.emit c.tr c.tr_wheel Tr.Count t.wheel.Wheel.len
    | None -> ());
    match t.obs with
    | Some o -> Obs.set o.wheel_depth t.wheel.Wheel.len
    | None -> ()
  in
  (* With no timed checker the generation counter can never move on an
     event, so the untimed fast path is the bare engine step. *)
  let untimed = Array.length timed = 0 in
  Array.iteri
    (fun gid nm ->
      match (t.obs, t.trc) with
      | None, None when untimed ->
          Tap.subscribe_name t.tap nm (fun e ->
              Flat.step_name eng ~gid ~time:e.Trace.time)
      | None, None ->
          Tap.subscribe_name t.tap nm (fun e ->
              Flat.step_name eng ~gid ~time:e.Trace.time;
              if Flat.deadline_generation eng <> !last_gen then resettle ())
      | obs, trc ->
          let sampled =
            match obs with
            | Some o ->
                let deliveries =
                  Obs.counter o.metrics ~name:"loseq_hub_deliveries_total"
                    ~help:"Routed checker deliveries, by event name"
                    ~labels:[ ("name", Name.to_string nm) ]
                    ()
                in
                fun () ->
                  Obs.incr deliveries;
                  Obs.counter_value deliveries land mask = 0
            | None ->
                let phase = ref 0 in
                fun () ->
                  incr phase;
                  !phase land mask = 0
          in
          Tap.subscribe_name t.tap nm (fun e ->
              if sampled () then begin
                let t0 = Monotonic_clock.now () in
                (match trc with
                | Some c ->
                    Tr.emit_at c.tr ~ts_ns:(Int64.to_int t0) c.tr_dispatch
                      Tr.Span_begin 0
                | None -> ());
                Flat.step_name eng ~gid ~time:e.Trace.time;
                if Flat.deadline_generation eng <> !last_gen then resettle ();
                let t1 = Monotonic_clock.now () in
                (match obs with
                | Some o ->
                    Obs.observe o.dispatch_ns
                      (Int64.to_int (Int64.sub t1 t0))
                | None -> ());
                match trc with
                | Some c ->
                    Tr.emit_at c.tr ~ts_ns:(Int64.to_int t1) c.tr_dispatch
                      Tr.Span_end
                      (Int64.to_int (Int64.sub t1 t0))
                | None -> ()
              end
              else begin
                Flat.step_name eng ~gid ~time:e.Trace.time;
                if Flat.deadline_generation eng <> !last_gen then resettle ()
              end))
    (Flat.names eng);
  resettle ();
  Array.to_list checkers

let add ?(backend = Backend.compiled) ?mode ?name ?latency_sample_rate t
    pattern =
  let backend =
    match mode with
    | Some m -> Backend.direct ~mode:m pattern
    | None -> backend pattern
  in
  let checker =
    Checker.make ?name ~now:(fun () -> Tap.now_ps t.tap) backend
  in
  host ?latency_sample_rate t checker ~strict:(mode = Some Monitor.Strict);
  checker

let on_violation t hook =
  List.iter
    (fun c -> Checker.on_violation c (fun v -> hook c v))
    (checkers t)

(* After an external state restore: every entry's armed deadline is
   stale — re-read next_deadline, re-park the wheel and the kernel
   timeout.  [settle] expires deadlines already in the past.  Delta
   counters mirroring checker state are re-baselined for the same
   reason: the restore moved their source without executing steps. *)
let resync t =
  List.iter
    (fun entry ->
      entry.armed <- -1;
      rearm t entry)
    (List.rev t.entries_rev);
  (match t.obs with
  | Some o -> List.iter (fun f -> f ()) o.rebase
  | None -> ());
  settle t

let finalize t = List.iter (fun c -> ignore (Checker.finalize c)) (checkers t)

let report t =
  let report = Report.create () in
  List.iter (Report.add report) (checkers t);
  report

let all_passed t = List.for_all Checker.passed (checkers t)
