open Loseq_core
open Loseq_sim

(* ---- merged deadline wheel -------------------------------------------- *)

(* A binary min-heap of (deadline, entry) with lazy invalidation: an
   entry records the deadline it is currently armed for; stale heap
   items (the entry re-armed or disarmed since the push) are dropped
   when they surface.  One kernel timeout is kept scheduled at the heap
   minimum — however many timed checkers the hub hosts. *)

type entry = { checker : Checker.t; mutable armed : int (* -1 = unarmed *) }

module Wheel = struct
  type t = {
    mutable heap : (int * entry) array;
    mutable len : int;
  }

  let create () = { heap = [||]; len = 0 }

  let swap h i j =
    let tmp = h.heap.(i) in
    h.heap.(i) <- h.heap.(j);
    h.heap.(j) <- tmp

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if fst h.heap.(i) < fst h.heap.(parent) then begin
        swap h i parent;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.len && fst h.heap.(l) < fst h.heap.(!smallest) then smallest := l;
    if r < h.len && fst h.heap.(r) < fst h.heap.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap h i !smallest;
      sift_down h !smallest
    end

  let push h deadline entry =
    if h.len = Array.length h.heap then begin
      (* Grow, filling fresh slots with the pushed item (never read
         beyond [len]). *)
      let grown = Array.make (max 8 (2 * h.len)) (deadline, entry) in
      Array.blit h.heap 0 grown 0 h.len;
      h.heap <- grown
    end;
    h.heap.(h.len) <- (deadline, entry);
    h.len <- h.len + 1;
    sift_up h (h.len - 1)

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.heap.(0) in
      h.len <- h.len - 1;
      h.heap.(0) <- h.heap.(h.len);
      sift_down h 0;
      Some top
    end

  (* Smallest non-stale deadline, dropping stale items on the way. *)
  let rec min_live h =
    if h.len = 0 then None
    else
      let deadline, entry = h.heap.(0) in
      if entry.armed = deadline then Some deadline
      else begin
        ignore (pop h);
        min_live h
      end
end

type t = {
  tap : Tap.t;
  mutable entries_rev : entry list;
  wheel : Wheel.t;
  mutable scheduled : (int * Kernel.handle) option;
      (* deadline the kernel timeout is parked at *)
}

let create tap =
  { tap; entries_rev = []; wheel = Wheel.create (); scheduled = None }

let tap t = t.tap
let checkers t = List.rev_map (fun e -> e.checker) t.entries_rev
let size t = List.length t.entries_rev

(* Keep the single kernel timeout parked at the wheel's live minimum. *)
let rec settle t =
  match Wheel.min_live t.wheel with
  | None -> (
      match t.scheduled with
      | Some (_, handle) ->
          Kernel.cancel handle;
          t.scheduled <- None
      | None -> ())
  | Some deadline -> (
      match t.scheduled with
      | Some (at, _) when at = deadline -> ()
      | Some (_, handle) ->
          Kernel.cancel handle;
          t.scheduled <- None;
          settle t
      | None ->
          let kernel = Tap.kernel t.tap in
          let at = Time.ps (deadline + 1) in
          if Time.( < ) (Kernel.now kernel) at then
            t.scheduled <-
              Some (deadline, Kernel.schedule_at kernel ~at (fun () -> fire t))
          else begin
            (* Already past: expire it now rather than scheduling in the
               past. *)
            expire t;
            settle t
          end)

(* Poll every armed checker whose deadline has elapsed ([check_time]
   reports a miss when [now > deadline]); stale heap items are dropped,
   live future items are put back untouched. *)
and expire t =
  let now = Tap.now_ps t.tap in
  let rec drain () =
    match Wheel.pop t.wheel with
    | None -> ()
    | Some (d, entry) ->
        if entry.armed <> d then drain () (* stale *)
        else if d >= now then Wheel.push t.wheel d entry
        else begin
          entry.armed <- -1;
          Checker.poll entry.checker ~now;
          rearm t entry;
          drain ()
        end
  in
  drain ()

and fire t =
  t.scheduled <- None;
  expire t;
  settle t

and rearm t entry =
  match Checker.next_deadline entry.checker with
  | None -> entry.armed <- -1
  | Some deadline ->
      if entry.armed <> deadline then begin
        entry.armed <- deadline;
        Wheel.push t.wheel deadline entry
      end

let after_delivery t entry =
  rearm t entry;
  settle t

let host t checker ~strict =
  let entry = { checker; armed = -1 } in
  t.entries_rev <- entry :: t.entries_rev;
  let backend = Checker.backend checker in
  if strict then
    Tap.subscribe t.tap (fun e ->
        Checker.deliver checker e;
        after_delivery t entry)
  else
    Name.Set.iter
      (fun n ->
        let handler = Checker.routed checker n in
        Tap.subscribe_name t.tap n (fun e ->
            handler e;
            after_delivery t entry))
      backend.Backend.alphabet;
  after_delivery t entry

let add ?(backend = Backend.compiled) ?mode ?name t pattern =
  let backend =
    match mode with
    | Some m -> Backend.direct ~mode:m pattern
    | None -> backend pattern
  in
  let checker =
    Checker.make ?name ~now:(fun () -> Tap.now_ps t.tap) backend
  in
  host t checker ~strict:(mode = Some Monitor.Strict);
  checker

let on_violation t hook =
  List.iter
    (fun c -> Checker.on_violation c (fun v -> hook c v))
    (checkers t)

(* After an external state restore: every entry's armed deadline is
   stale — re-read next_deadline, re-park the wheel and the kernel
   timeout.  [settle] expires deadlines already in the past. *)
let resync t =
  List.iter
    (fun entry ->
      entry.armed <- -1;
      rearm t entry)
    (List.rev t.entries_rev);
  settle t

let finalize t = List.iter (fun c -> ignore (Checker.finalize c)) (checkers t)

let report t =
  let report = Report.create () in
  List.iter (Report.add report) (checkers t);
  report

let all_passed t = List.for_all Checker.passed (checkers t)
