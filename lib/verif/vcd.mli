(** Value Change Dump (IEEE 1364) export of observed event traces.

    Each interface name becomes a 1-bit wire pulsed high for one
    timescale unit at every occurrence, so recorded platform traces can
    be inspected in any standard waveform viewer (GTKWave etc.). *)

open Loseq_core

val of_trace : ?timescale:string -> ?scope:string -> Trace.t -> string
(** Render a trace as VCD source.  [timescale] defaults to ["1ps"]
    (matching the simulation kernel's unit), [scope] to ["loseq"]. *)

val write : path:string -> ?timescale:string -> ?scope:string -> Trace.t -> unit
(** [of_trace] to a file. *)
