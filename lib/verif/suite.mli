(** Property suites: named bundles of loose-ordering properties.

    A verification team maintains properties in files, one per component
    or protocol.  The format is line-oriented:

    {v
    # The IPU interface contract (paper, Section 3)
    config_before_start:  {set_imgAddr, set_glAddr, set_glSize} << start
    recognition_deadline: start => read_img[100,60000] < set_irq within 60000000
    v}

    [#] starts a comment; blank lines are ignored; each entry is
    [name: pattern] with the concrete pattern syntax of
    {!Loseq_core.Parser}.  Entry names must be unique. *)

open Loseq_core

type entry = {
  label : string;
  pattern : Pattern.t;
  line : int;  (** 1-based source line, for finding locations *)
}
type t = entry list

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse : string -> (t, error) result
(** Parse suite source text. *)

val load : string -> (t, error) result
(** Parse a file ([error.line] = 0 when the file cannot be read). *)

val to_string : t -> string
(** Render back to the file format (a right inverse of {!parse}). *)

val find : t -> string -> Pattern.t option

val entries_of : t -> (string * Pattern.t) list
(** The labelled patterns in entry order — what suite-level factories
    and the analysis passes consume. *)

val attach_hub :
  ?metrics:Loseq_obs.Metrics.t ->
  ?trace:Loseq_obs.Trace.t ->
  ?backend:Backend.factory ->
  ?suite_backend:Backend.suite_factory ->
  ?mode:Monitor.mode ->
  ?latency_sample_rate:int ->
  Tap.t ->
  t ->
  Hub.t
(** One {!Checker} per entry, hosted on a fresh alphabet-routed
    {!Hub} with a shared deadline wheel.  [backend] defaults to
    {!Loseq_core.Backend.compiled}; [suite_backend], when given (and
    [mode] is not), compiles the whole suite in one call
    (e.g. {!Loseq_core.Backend.flat_views}) so checkers share state;
    [metrics], [trace] and [latency_sample_rate] (defaults noop, noop,
    64) are handed to the hub — see {!Hub.create} and {!Hub.add}. *)

val attach_hub_flat :
  ?metrics:Loseq_obs.Metrics.t ->
  ?trace:Loseq_obs.Trace.t ->
  ?latency_sample_rate:int ->
  Tap.t ->
  t ->
  Hub.t * Flat.t
(** The engine-direct flat hosting path: compile the suite into one
    {!Loseq_core.Flat} engine and host it with {!Hub.host_flat} —
    per-name dispatch is an index into the engine's table rather than
    a per-checker closure chain.  Returns the hub (reports, hooks,
    finalize as usual) and the engine (blob checkpoints, direct
    stepping). *)

val attach_all :
  ?backend:Backend.factory -> ?mode:Monitor.mode -> Tap.t -> t -> Report.t
(** {!attach_hub}, reported: one checker per entry, collected in a
    report. *)

val check_trace :
  ?metrics:Loseq_obs.Metrics.t ->
  ?backend:Backend.factory ->
  ?suite_backend:Backend.suite_factory ->
  ?final_time:int ->
  t ->
  Trace.t ->
  (string * bool) list
(** Offline: run every property over a recorded trace on the chosen
    backend (compiled by default); [(label, passed)] per entry.  With a
    live [metrics] sink every backend is {!Loseq_core.Backend.instrument}ed,
    so [loseq_backend_steps_total] ends at exactly
    [length trace * length suite] (each entry steps the whole trace —
    no routing on the batch path). *)
