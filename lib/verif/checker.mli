(** Assertion checkers: monitors hosted in a simulation.

    A checker subscribes a {!Loseq_core.Monitor} to a {!Tap}, drives it
    with the observed events, and — for timed-implication patterns —
    keeps a timeout scheduled in the kernel so that a deadline miss is
    reported at the moment the deadline elapses, even if no further
    event arrives (the [sc_time]-based mechanism of the paper's
    Section 6 monitors). *)

open Loseq_core

type t

val attach : ?mode:Monitor.mode -> ?name:string -> Tap.t -> Pattern.t -> t
(** Raises {!Wellformed.Ill_formed} on an ill-formed pattern. *)

val name : t -> string
val pattern : t -> Pattern.t
val monitor : t -> Monitor.t
val verdict : t -> Monitor.verdict

val finalize : t -> Monitor.verdict
(** Final deadline check at the current simulation time; call when the
    simulation is over. *)

val passed : t -> bool
(** No violation (after {!finalize}d or mid-run). *)

val on_violation : t -> (Diag.violation -> unit) -> unit
(** Called once, when the monitor first reports a violation. *)

val events_seen : t -> int
val coverage : t -> Coverage.t
val pp_verdict : Format.formatter -> Monitor.verdict -> unit
