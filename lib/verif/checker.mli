(** Assertion checkers: monitor backends hosted in a simulation.

    A checker wraps one {!Loseq_core.Backend} (structural, compiled or
    ViaPSL — chosen per checker with a factory, compiled by default),
    drives it with observed events, collects coverage and reports
    violations once.  For timed-implication patterns the hosting layer
    keeps a timeout scheduled in the kernel so that a deadline miss is
    reported at the moment the deadline elapses, even if no further
    event arrives (the [sc_time]-based mechanism of the paper's
    Section 6 monitors): {!attach} manages its own timeout, while
    checkers hosted on a {!Hub} share the hub's merged timer wheel.

    Events are routed by name: {!attach} subscribes one pre-resolved
    handler per alphabet name ({!Tap.subscribe_name}), so a checker is
    only invoked for events in its pattern's alphabet and
    {!events_seen} counts exactly those.  Strict mode is the exception:
    it must see (and reject) foreign events, so it subscribes to the
    whole stream and forces the structural backend. *)

open Loseq_core

type t

val attach :
  ?backend:Backend.factory ->
  ?mode:Monitor.mode ->
  ?name:string ->
  Tap.t ->
  Pattern.t ->
  t
(** Self-hosted: subscribe to the tap and keep a private deadline
    timeout.  [backend] defaults to {!Backend.compiled}; [mode], when
    given, overrides [backend] with the structural monitor in that
    mode.  Raises {!Wellformed.Ill_formed} on an ill-formed pattern
    (and whatever else the factory raises). *)

(** {1 Hosting primitives}

    Used by {!Hub} (or any custom host); a checker built with {!make}
    is not subscribed anywhere. *)

val make : ?name:string -> ?now:(unit -> int) -> Backend.t -> t
(** A detached checker over an existing backend.  [now] is the host's
    clock, consulted by {!finalize} (defaults to constant 0). *)

val deliver : t -> Trace.event -> unit
(** Feed one event (coverage, verdict transitions, violation hooks). *)

val routed : t -> Name.t -> Trace.event -> unit
(** [routed t n] is the per-name fast path: the backend resolves [n]
    once ({!Backend.t.prepare}) and the returned handler is what a host
    subscribes for that name. *)

val poll : t -> now:int -> unit
(** Deadline check at time [now] (reports a miss through the hooks). *)

val sync_external : t -> unit
(** The backend was stepped {e outside} this checker — engine-level
    suite dispatch ({!Loseq_core.Flat}) where the shared engine, not
    the checker, executes the monitor step.  Re-reads the verdict and
    reports a new violation through the hooks exactly once; a no-op
    when nothing changed. *)

val next_deadline : t -> int option

(** {1 Results} *)

val name : t -> string
val pattern : t -> Pattern.t
val backend : t -> Backend.t
val verdict : t -> Backend.verdict

val finalize : t -> Backend.verdict
(** Final deadline check at the host's current time; call when the
    simulation is over. *)

val finalize_at : t -> now:int -> Backend.verdict

val passed : t -> bool
(** No violation (after {!finalize}d or mid-run). *)

val on_violation : t -> (Diag.violation -> unit) -> unit
(** Called once, when the backend first reports a violation. *)

val on_transition : t -> (before:Backend.verdict -> after:Backend.verdict -> unit) -> unit
(** Called after a delivered event whose step changed the verdict
    (steady Running-to-Running steps are filtered out; at most one
    hook, the last one set wins) — the telemetry tap for counting
    checker transitions without re-reading the verdict on the hot
    path.  Deadline-driven transitions are not step-driven and arrive
    through {!on_violation} instead. *)

val restore_meta : t -> events_seen:int -> unit
(** After the backend's state was overwritten externally
    ({!Loseq_core.Backend.t.restore}, checkpoint resume): restore the
    delivery count and re-align the reported-violation flag with the
    backend's verdict, so a violation that was already reported before
    the checkpoint does not fire the hooks again. *)

val events_seen : t -> int
(** Events delivered to this checker — with name routing, only the
    events in the pattern's alphabet. *)

val coverage : t -> Coverage.t
val pp_verdict : Format.formatter -> Backend.verdict -> unit
