open Loseq_core
open Loseq_sim

let intervals ~from ~until trace =
  let rec loop pending acc = function
    | [] -> List.rev acc
    | (e : Trace.event) :: rest ->
        if Name.equal e.name from then loop (Some e.time) acc rest
        else if Name.equal e.name until then
          match pending with
          | Some t0 -> loop None ((e.time - t0) :: acc) rest
          | None -> loop None acc rest
        else loop pending acc rest
  in
  loop None [] trace

type summary = {
  count : int;
  min_ps : int;
  max_ps : int;
  mean_ps : float;
  p50_ps : int;
  p90_ps : int;
}

let percentile samples fraction =
  if samples = [] then invalid_arg "Latency.percentile: empty sample";
  if fraction < 0. || fraction > 1. then
    invalid_arg "Latency.percentile: fraction out of [0,1]";
  let sorted = List.sort compare samples in
  let n = List.length sorted in
  let rank =
    Stdlib.min (n - 1)
      (Stdlib.max 0 (int_of_float (ceil (fraction *. float_of_int n)) - 1))
  in
  List.nth sorted rank

let summarize = function
  | [] -> None
  | samples ->
      let n = List.length samples in
      Some
        {
          count = n;
          min_ps = List.fold_left Stdlib.min max_int samples;
          max_ps = List.fold_left Stdlib.max min_int samples;
          mean_ps =
            float_of_int (List.fold_left ( + ) 0 samples) /. float_of_int n;
          p50_ps = percentile samples 0.5;
          p90_ps = percentile samples 0.9;
        }

let suggest_deadline ?(slack = 0.5) samples =
  match summarize samples with
  | None -> None
  | Some s ->
      Some (int_of_float (ceil (float_of_int s.max_ps *. (1. +. slack))))

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d min=%a max=%a mean=%a p50=%a p90=%a" s.count Time.pp
    (Time.ps s.min_ps) Time.pp (Time.ps s.max_ps) Time.pp
    (Time.ps (int_of_float s.mean_ps))
    Time.pp (Time.ps s.p50_ps) Time.pp (Time.ps s.p90_ps)

type t = {
  from : Name.t;
  until : Name.t;
  mutable pending : int option;
  mutable collected_rev : int list;
  mutable watchers : (int * (int -> unit)) list;
}

let create ~from ~until tap =
  let t =
    { from; until; pending = None; collected_rev = []; watchers = [] }
  in
  (* Alphabet-routed: the collector is only invoked for its two
     endpoint names, however busy the tap is. *)
  Tap.subscribe_name tap t.from (fun (e : Trace.event) ->
      t.pending <- Some e.time);
  Tap.subscribe_name tap t.until (fun (e : Trace.event) ->
      (match t.pending with
      | Some t0 ->
          let interval = e.time - t0 in
          t.collected_rev <- interval :: t.collected_rev;
          List.iter
            (fun (threshold, callback) ->
              if interval > threshold then callback interval)
            t.watchers
      | None -> ());
      t.pending <- None);
  t

let durations t = List.rev t.collected_rev
let summary t = summarize (durations t)

let watch t ~threshold callback =
  t.watchers <- (Time.to_ps threshold, callback) :: t.watchers
