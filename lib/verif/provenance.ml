open Loseq_core

type link = { time : int; name : Name.t }

(* Per-entry bounded ring of recent alphabet events.  Like the
   flight-recorder ring, the write index is [total land mask] so the
   oldest slot is overwritten and nothing is shifted. *)
type ring = {
  label : string;
  pattern : Pattern.t;
  alpha : Name.Set.t;
  times : int array;
  names : Name.t array;
  mask : int;
  mutable total : int;
  mutable freeze_time : int option;
      (* first-violation time: later events no longer enter the ring *)
  mutable violation : Diag.violation option;
}

type t = {
  rings : ring array;
  by_label : (string, int) Hashtbl.t;
  route : int list Name.Map.t;  (* name -> rings listening, for {!record} *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let snapshot r =
  let len = min r.total (Array.length r.times) in
  let rec collect k acc =
    if k < r.total - len then acc
    else
      let i = k land r.mask in
      collect (k - 1) ({ time = r.times.(i); name = r.names.(i) } :: acc)
  in
  (* arrival order; sort makes the chain chronological even when fed
     out of order (the speculative engine's arrival stream) *)
  List.stable_sort
    (fun a b -> compare a.time b.time)
    (collect (r.total - 1) [])

(* The violation hook fires synchronously {e inside} the offending
   event's delivery; when the recorder's tap subscription runs after
   the checker's (subscription order), the deciding event reaches the
   ring only after {!note_violation}.  So freezing is by time, not by
   snapshot: pushes at or before the violation instant still land, and
   the chain is cut at read time. *)
let push r ~time name =
  match r.freeze_time with
  | Some ft when time > ft -> ()
  | _ ->
      let i = r.total land r.mask in
      r.times.(i) <- time;
      r.names.(i) <- name;
      r.total <- r.total + 1

let make_rings depth suite =
  let depth = pow2 (max depth 1) 1 in
  let dummy = Name.v "_" in
  let rings =
    Array.of_list
      (List.map
         (fun (e : Suite.entry) ->
           {
             label = e.label;
             pattern = e.pattern;
             alpha = Pattern.alpha e.pattern;
             times = Array.make depth 0;
             names = Array.make depth dummy;
             mask = depth - 1;
             total = 0;
             freeze_time = None;
             violation = None;
           })
         suite)
  in
  let by_label = Hashtbl.create (Array.length rings) in
  Array.iteri (fun i r -> Hashtbl.replace by_label r.label i) rings;
  let route = ref Name.Map.empty in
  Array.iteri
    (fun i r ->
      Name.Set.iter
        (fun n ->
          route :=
            Name.Map.update n
              (fun l -> Some (i :: Option.value ~default:[] l))
              !route)
        r.alpha)
    rings;
  { rings; by_label; route = !route }

let create_detached ?(depth = 64) suite = make_rings depth suite

let create ?(depth = 64) tap suite =
  let t = make_rings depth suite in
  Array.iter
    (fun r ->
      Name.Set.iter
        (fun n ->
          Tap.subscribe_name tap n (fun (e : Trace.event) ->
              push r ~time:e.time e.name))
        r.alpha)
    t.rings;
  t

let record t ~time name =
  match Name.Map.find_opt name t.route with
  | None -> ()
  | Some ring_ids ->
      List.iter (fun i -> push t.rings.(i) ~time name) ring_ids

let seen t =
  Array.to_list (Array.map (fun r -> (r.label, r.total)) t.rings)

let note_violation t ~label (v : Diag.violation) =
  match Hashtbl.find_opt t.by_label label with
  | None -> ()
  | Some i ->
      let r = t.rings.(i) in
      if r.freeze_time = None then begin
        r.freeze_time <- Some v.time;
        r.violation <- Some v
      end

let clear_violation t ~label =
  match Hashtbl.find_opt t.by_label label with
  | None -> ()
  | Some i ->
      let r = t.rings.(i) in
      r.freeze_time <- None;
      r.violation <- None

let violation_of t label =
  match Hashtbl.find_opt t.by_label label with
  | None -> None
  | Some i -> t.rings.(i).violation

let captured t label =
  match Hashtbl.find_opt t.by_label label with
  | None -> []
  | Some i -> snapshot t.rings.(i)

(* ---- minimization ------------------------------------------------------- *)

let to_trace chain =
  List.map
    (fun l -> { Trace.name = l.name; time = l.time })
    (List.stable_sort (fun a b -> compare a.time b.time) chain)

let replay ?backend ~final_time ~label pattern chain =
  let suite = [ { Suite.label; pattern; line = 0 } ] in
  match Suite.check_trace ?backend ~final_time suite (to_trace chain) with
  | [ (_, passed) ] -> passed
  | _ -> true

let minimize ?backend ~final_time ~label pattern chain =
  let fails c = not (replay ?backend ~final_time ~label pattern c) in
  if not (fails chain) then chain
  else begin
    (* Greedy delta-debugging, one event at a time.  Walking from the
       front drops prefix noise (events of completed rounds) first. *)
    let keep = ref [] in
    let rec go = function
      | [] -> ()
      | e :: rest ->
          if fails (List.rev_append !keep rest) then go rest
          else begin
            keep := e :: !keep;
            go rest
          end
    in
    go chain;
    List.rev !keep
  end

(* ---- rendering ---------------------------------------------------------- *)

let chain_json ?violation chain =
  let chain_field =
    ( "chain",
      Json.List
        (List.map
           (fun l ->
             Json.Obj
               [
                 ("time", Json.Int l.time);
                 ("name", Json.String (Name.to_string l.name));
               ])
           chain) )
  in
  match violation with
  | None -> Json.Obj [ chain_field ]
  | Some (v : Diag.violation) ->
      let deadline =
        match v.reason with
        | Diag.Deadline_miss { started; deadline; now } ->
            [
              ( "deadline",
                Json.Obj
                  [
                    ("started", Json.Int started);
                    ("deadline", Json.Int deadline);
                    ("now", Json.Int now);
                  ] );
            ]
        | _ -> []
      in
      Json.Obj
        ([
           chain_field;
           ("violation_time", Json.Int v.time);
           ("reason", Json.String (Diag.violation_to_string v));
         ]
        @ deadline)

let chain_of_json json =
  let json =
    match Json.member "provenance" json with Some p -> p | None -> json
  in
  match Json.member "chain" json with
  | None -> Error "no \"chain\" array"
  | Some c -> (
      match Json.to_list_opt c with
      | None -> Error "\"chain\" is not an array"
      | Some items ->
          let link item =
            match
              ( Option.bind (Json.member "time" item) (function
                  | Json.Int i -> Some i
                  | _ -> None),
                Option.bind (Json.member "name" item) Json.to_string_opt )
            with
            | Some time, Some name -> Ok { time; name = Name.v name }
            | _ -> Error "chain element needs \"time\" and \"name\""
          in
          List.fold_left
            (fun acc item ->
              match (acc, link item) with
              | Error _, _ -> acc
              | _, (Error _ as e) -> e
              | Ok links, Ok l -> Ok (l :: links))
            (Ok []) items
          |> Result.map List.rev)
