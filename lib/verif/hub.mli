(** Event hubs: many checkers on one tap, alphabet-routed.

    The hub is the production hosting layer for monitor backends.  Two
    properties distinguish it from attaching checkers one by one:

    - {e alphabet routing}: each emitted event reaches only the
      checkers whose pattern alphabet contains its name (one interned
      per-name subscription per alphabet name, resolved through
      {!Loseq_core.Backend.t.prepare} so even the name lookup happens
      once per tap, not once per event).  A tap carrying [k] checkers
      with disjoint alphabets does {e one} monitor step per event, not
      [k] — the hosted realization of the paper's Θ(max|α(Fᵢ)|)
      per-event cost;
    - {e a merged deadline wheel}: a single kernel timeout parked at
      the minimum of all checkers' [next_deadline]s (a lazy min-heap),
      instead of one timeout per timed checker.  Deadline-only
      violations — no trailing event — are still reported the moment
      they elapse.

    Strict-mode checkers are the exception to routing: they must see
    foreign events, so they subscribe to the whole stream. *)

open Loseq_core

type t

val create : ?metrics:Loseq_obs.Metrics.t -> ?trace:Loseq_obs.Trace.t -> Tap.t -> t
(** [metrics] (default {!Loseq_obs.Metrics.noop}) attaches runtime
    telemetry when live: [loseq_events_dispatched_total] (one per tap
    emission), [loseq_hub_deliveries_total{name=..}] (routed checker
    deliveries), [loseq_checker_transitions_total{verdict=..}],
    [loseq_hub_wheel_depth] (refreshed on deadline activity and sampled
    dispatches), [loseq_hub_deadline_firings_total] and the
    sampled [loseq_hub_dispatch_ns] latency histogram; hosted backends
    additionally count [loseq_backend_steps_total{backend=..}].  With
    the noop default none of this is registered or subscribed — the
    dispatch path is unchanged.

    [trace] (default {!Loseq_obs.Trace.noop}) attaches the flight
    recorder when live, on the ["hub"] track: [dispatch] spans on the
    latency-sampled path (reusing its clock reads, so tracing adds no
    clock reads of its own), [deadline_fire] instants (argument: the
    missed deadline) and [wheel_depth] counter samples. *)

val add :
  ?backend:Backend.factory ->
  ?mode:Monitor.mode ->
  ?name:string ->
  ?latency_sample_rate:int ->
  t ->
  Pattern.t ->
  Checker.t
(** Host one property.  [backend] defaults to {!Backend.compiled};
    [mode], when given, overrides [backend] with the structural monitor
    in that mode (strict mode disables routing for that checker).
    [latency_sample_rate] (default 64, rounded up to a power of two)
    samples one delivery in N into [loseq_hub_dispatch_ns] and the
    dispatch spans; [Invalid_argument] when [< 1].  Raises
    {!Wellformed.Ill_formed} (and whatever the factory raises). *)

val host : ?latency_sample_rate:int -> t -> Checker.t -> strict:bool -> unit
(** Host a detached checker built with {!Checker.make} (advanced: a
    custom backend already constructed). *)

val host_flat :
  ?latency_sample_rate:int -> t -> Flat.t -> Backend.t array -> Checker.t list
(** Host a whole flat suite engine directly: one tap subscription per
    interned name walks the engine's dispatch row ({!Loseq_core.Flat.step_name})
    instead of one closure per (checker, alphabet-name).  [views] must
    be the per-checker backends of {e that} engine
    ({!Loseq_core.Backend.flat_suite}); the returned checkers (entry
    order, also appended to {!checkers}) carry reports, finalization
    and violation hooks — verdict decisions reach them through the
    engine's notify callback.  These checkers never see individual
    deliveries, so their [events_seen]/coverage stay empty; the
    [loseq_backend_steps_total{backend=flat}] counter mirrors the
    engine's step index instead.  The deadline wheel re-settles only
    when the engine's deadline generation moves. *)

val tap : t -> Tap.t
val checkers : t -> Checker.t list
(** In {!add} order. *)

val size : t -> int

val on_violation : t -> (Checker.t -> Loseq_core.Diag.violation -> unit) -> unit
(** Attach a violation hook to every checker currently hosted — the
    incremental-report path a streaming session uses to surface
    violations the moment they happen (each checker still reports at
    most once). *)

val resync : t -> unit
(** Re-read every hosted checker's [next_deadline] and re-park the
    merged deadline wheel — required after the checkers' backend states
    were overwritten externally (checkpoint resume).  Deadlines already
    in the past expire immediately. *)

val finalize : t -> unit
(** {!Checker.finalize} every checker at the current simulation time. *)

val report : t -> Report.t
(** A fresh report over all hosted checkers, in {!add} order. *)

val all_passed : t -> bool
