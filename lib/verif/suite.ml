open Loseq_core

type entry = { label : string; pattern : Pattern.t; line : int }
type t = entry list
type error = { line : int; message : string }

let pp_error ppf e =
  if e.line = 0 then Format.fprintf ppf "suite error: %s" e.message
  else Format.fprintf ppf "suite error at line %d: %s" e.line e.message

let is_blank s = String.trim s = ""

let valid_label s =
  s <> ""
  && String.for_all
       (function
         | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '-' | '.' -> true
         | _ -> false)
       s

let parse source =
  let lines = String.split_on_char '\n' source in
  let rec loop lineno entries seen = function
    | [] -> Ok (List.rev entries)
    | line :: rest -> (
        let trimmed = String.trim line in
        if is_blank trimmed || trimmed.[0] = '#' then
          loop (lineno + 1) entries seen rest
        else
          match String.index_opt trimmed ':' with
          | None ->
              Error
                { line = lineno; message = "expected 'name: pattern'" }
          | Some colon -> (
              let label = String.trim (String.sub trimmed 0 colon) in
              let body =
                String.trim
                  (String.sub trimmed (colon + 1)
                     (String.length trimmed - colon - 1))
              in
              if not (valid_label label) then
                Error
                  {
                    line = lineno;
                    message = Printf.sprintf "invalid entry name %S" label;
                  }
              else if List.mem label seen then
                Error
                  {
                    line = lineno;
                    message = Printf.sprintf "duplicate entry name %S" label;
                  }
              else
                match Parser.pattern body with
                | Ok pattern ->
                    loop (lineno + 1)
                      ({ label; pattern; line = lineno } :: entries)
                      (label :: seen) rest
                | Error e ->
                    Error
                      {
                        line = lineno;
                        message =
                          Format.asprintf "%a" Parser.pp_error e;
                      }))
  in
  loop 1 [] [] lines

let load path =
  match open_in path with
  | ic ->
      let n = in_channel_length ic in
      let source = really_input_string ic n in
      close_in ic;
      parse source
  | exception Sys_error message -> Error { line = 0; message }

let to_string suite =
  String.concat ""
    (List.map
       (fun e ->
         Printf.sprintf "%s: %s\n" e.label (Pattern.to_string e.pattern))
       suite)

let find suite label =
  List.find_map
    (fun e -> if String.equal e.label label then Some e.pattern else None)
    suite

let entries_of suite = List.map (fun e -> (e.label, e.pattern)) suite

let attach_hub ?metrics ?trace ?backend ?suite_backend ?mode
    ?latency_sample_rate tap suite =
  let hub = Hub.create ?metrics ?trace tap in
  (match (suite_backend, mode) with
  | Some sf, None ->
      (* Suite-level factory: one compilation over all entries, hosted
         per checker through the ordinary routed path. *)
      let views = sf (entries_of suite) in
      List.iteri
        (fun i e ->
          let checker =
            Checker.make ~name:e.label
              ~now:(fun () -> Tap.now_ps tap)
              views.(i)
          in
          Hub.host ?latency_sample_rate hub checker ~strict:false)
        suite
  | _ ->
      List.iter
        (fun e ->
          ignore
            (Hub.add ?backend ?mode ?latency_sample_rate ~name:e.label hub
               e.pattern))
        suite);
  hub

let attach_hub_flat ?metrics ?trace ?latency_sample_rate tap suite =
  let eng, views = Backend.flat_suite (entries_of suite) in
  let hub = Hub.create ?metrics ?trace tap in
  ignore (Hub.host_flat ?latency_sample_rate hub eng views);
  (hub, eng)

let attach_all ?backend ?mode tap suite =
  Hub.report (attach_hub ?backend ?mode tap suite)

let check_trace ?(metrics = Loseq_obs.Metrics.noop) ?(backend = Backend.compiled)
    ?suite_backend ?final_time suite trace =
  let instrument =
    if Loseq_obs.Metrics.is_live metrics then Backend.instrument metrics
    else Fun.id
  in
  let backends =
    match suite_backend with
    | Some sf -> Array.to_list (sf (entries_of suite))
    | None -> List.map (fun e -> backend e.pattern) suite
  in
  List.map2
    (fun e b ->
      let b = instrument b in
      List.iter (fun ev -> ignore (b.Backend.step ev)) trace;
      let now =
        match final_time with
        | Some ft -> ft
        | None -> Trace.end_time trace
      in
      (e.label, Backend.passed (b.Backend.finalize ~now)))
    suite backends
