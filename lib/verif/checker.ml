open Loseq_core
open Loseq_sim

type t = {
  name : string;
  backend : Backend.t;
  now : unit -> int;  (** the host's clock, for {!finalize} *)
  coverage : Coverage.t;
  mutable events_seen : int;
  mutable timeout : Kernel.handle option;
  mutable violation_hooks : (Diag.violation -> unit) list;
  mutable violation_reported : bool;
  mutable transition_hook :
    (before:Backend.verdict -> after:Backend.verdict -> unit) option;
}

let make ?name ?(now = fun () -> 0) backend =
  let name =
    match name with
    | Some n -> n
    | None -> Pattern.to_string backend.Backend.pattern
  in
  let t =
    {
      name;
      backend;
      now;
      coverage = Coverage.create backend.Backend.pattern;
      events_seen = 0;
      timeout = None;
      violation_hooks = [];
      violation_reported = false;
      transition_hook = None;
    }
  in
  (match backend.Backend.states with
  | Some states -> Coverage.observe_states t.coverage (states ())
  | None -> ());
  t

let report_if_violated t =
  match t.backend.Backend.verdict () with
  | Backend.Violated v when not t.violation_reported ->
      t.violation_reported <- true;
      Coverage.record_violation t.coverage;
      List.iter (fun hook -> hook v) (List.rev t.violation_hooks)
  | Backend.Violated _ | Backend.Running | Backend.Satisfied -> ()

(* Shared post-step accounting for every delivery path. *)
let note t ~before ~after =
  (match (before, after) with
  | Backend.Running, Backend.Satisfied -> Coverage.record_round t.coverage
  | _, (Backend.Running | Backend.Satisfied | Backend.Violated _) -> ());
  (match t.transition_hook with
  | None -> ()
  | Some hook -> (
      (* steady-state steps dominate; only real transitions reach the
         hook so the hot path stays one branch *)
      match (before, after) with
      | Backend.Running, Backend.Running -> ()
      | _ -> hook ~before ~after));
  (match t.backend.Backend.states with
  | Some states -> Coverage.observe_states t.coverage (states ())
  | None -> ());
  report_if_violated t

let deliver t event =
  t.events_seen <- t.events_seen + 1;
  Coverage.observe_event t.coverage event;
  let before = t.backend.Backend.verdict () in
  let after = t.backend.Backend.step event in
  note t ~before ~after

(* Per-name routed delivery: the backend resolves [name] once and the
   returned handler only takes the event for its time stamp. *)
let routed t name =
  let stepper = t.backend.Backend.prepare name in
  fun (event : Trace.event) ->
    t.events_seen <- t.events_seen + 1;
    Coverage.observe_event t.coverage event;
    let before = t.backend.Backend.verdict () in
    let after = stepper event.Trace.time in
    note t ~before ~after

let poll t ~now =
  ignore (t.backend.Backend.check_time ~now);
  report_if_violated t

let next_deadline t = t.backend.Backend.next_deadline ()

(* Keep exactly one kernel timeout scheduled at the backend's next
   deadline; fire a [check_time] just past it. *)
let reschedule_timeout t tap =
  (match t.timeout with
  | Some handle ->
      Kernel.cancel handle;
      t.timeout <- None
  | None -> ());
  match next_deadline t with
  | None -> ()
  | Some deadline_ps ->
      let kernel = Tap.kernel tap in
      let at = Time.ps (deadline_ps + 1) in
      if Time.( < ) (Kernel.now kernel) at then
        t.timeout <-
          Some
            (Kernel.schedule_at kernel ~at (fun () ->
                 poll t ~now:(Time.to_ps (Kernel.now kernel))))

let attach ?(backend = Backend.compiled) ?mode ?name tap pattern =
  let backend =
    match mode with
    | Some m -> Backend.direct ~mode:m pattern
    | None -> backend pattern
  in
  let t = make ?name ~now:(fun () -> Tap.now_ps tap) backend in
  (match mode with
  | Some Monitor.Strict ->
      (* Strict mode must see every event, not just the alphabet. *)
      Tap.subscribe tap (fun e ->
          deliver t e;
          reschedule_timeout t tap)
  | Some Monitor.Lenient | None ->
      Name.Set.iter
        (fun n ->
          let handler = routed t n in
          Tap.subscribe_name tap n (fun e ->
              handler e;
              reschedule_timeout t tap))
        backend.Backend.alphabet);
  t

let name t = t.name
let pattern t = t.backend.Backend.pattern
let backend t = t.backend
let verdict t = t.backend.Backend.verdict ()

let finalize_at t ~now =
  let verdict = t.backend.Backend.finalize ~now in
  report_if_violated t;
  verdict

let finalize t = finalize_at t ~now:(t.now ())

(* After an external state restore (checkpoint resume): align the
   bookkeeping with the backend so an already-reported violation does
   not fire the hooks a second time. *)
let restore_meta t ~events_seen =
  t.events_seen <- events_seen;
  (match t.backend.Backend.verdict () with
  | Backend.Violated _ -> t.violation_reported <- true
  | Backend.Running | Backend.Satisfied -> t.violation_reported <- false);
  match t.backend.Backend.states with
  | Some states -> Coverage.observe_states t.coverage (states ())
  | None -> ()

(* The backend was stepped outside this checker (engine-level suite
   dispatch): re-read the verdict and report a new violation through
   the hooks exactly once. *)
let sync_external t = report_if_violated t

let passed t = Backend.passed (t.backend.Backend.verdict ())
let on_violation t hook = t.violation_hooks <- hook :: t.violation_hooks
let on_transition t hook = t.transition_hook <- Some hook
let events_seen t = t.events_seen
let coverage t = t.coverage
let pp_verdict = Backend.pp_verdict
