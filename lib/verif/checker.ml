open Loseq_core
open Loseq_sim

type t = {
  name : string;
  tap : Tap.t;
  monitor : Monitor.t;
  coverage : Coverage.t;
  mutable events_seen : int;
  mutable timeout : Kernel.handle option;
  mutable violation_hooks : (Diag.violation -> unit) list;
  mutable violation_reported : bool;
}

let report_if_violated t =
  match Monitor.verdict t.monitor with
  | Monitor.Violated v when not t.violation_reported ->
      t.violation_reported <- true;
      Coverage.record_violation t.coverage;
      List.iter (fun hook -> hook v) (List.rev t.violation_hooks)
  | Monitor.Violated _ | Monitor.Running | Monitor.Satisfied -> ()

(* Keep exactly one kernel timeout scheduled at the monitor's next
   deadline; fire a [check_time] just past it. *)
let reschedule_timeout t =
  (match t.timeout with
  | Some handle ->
      Kernel.cancel handle;
      t.timeout <- None
  | None -> ());
  match Monitor.next_deadline t.monitor with
  | None -> ()
  | Some deadline_ps ->
      let kernel = Tap.kernel t.tap in
      let at = Time.ps (deadline_ps + 1) in
      if Time.( < ) (Kernel.now kernel) at then
        t.timeout <-
          Some
            (Kernel.schedule_at kernel ~at (fun () ->
                 let now = Time.to_ps (Kernel.now kernel) in
                 ignore (Monitor.check_time t.monitor ~now);
                 report_if_violated t))

let on_event t event =
  t.events_seen <- t.events_seen + 1;
  Coverage.observe_event t.coverage event;
  let before = Monitor.verdict t.monitor in
  let after = Monitor.step t.monitor event in
  Coverage.observe_states t.coverage (Monitor.fragment_states t.monitor);
  (match (before, after) with
  | Monitor.Running, Monitor.Satisfied -> Coverage.record_round t.coverage
  | Monitor.Running, Monitor.Running
    when Monitor.active_fragment t.monitor = 0 ->
      (* Heuristic: a repeated pattern restarting its first fragment has
         just closed a round; counted precisely enough for coverage. *)
      ()
  | _, (Monitor.Running | Monitor.Satisfied | Monitor.Violated _) -> ());
  report_if_violated t;
  reschedule_timeout t

let attach ?mode ?name tap pattern =
  let monitor = Monitor.create ?mode pattern in
  let name =
    match name with Some n -> n | None -> Pattern.to_string pattern
  in
  let t =
    {
      name;
      tap;
      monitor;
      coverage = Coverage.create pattern;
      events_seen = 0;
      timeout = None;
      violation_hooks = [];
      violation_reported = false;
    }
  in
  Coverage.observe_states t.coverage (Monitor.fragment_states monitor);
  Tap.subscribe tap (on_event t);
  t

let name t = t.name
let pattern t = Monitor.pattern t.monitor
let monitor t = t.monitor
let verdict t = Monitor.verdict t.monitor

let finalize t =
  let now = Tap.now_ps t.tap in
  let verdict = Monitor.finalize t.monitor ~now in
  report_if_violated t;
  verdict

let passed t =
  match Monitor.verdict t.monitor with
  | Monitor.Running | Monitor.Satisfied -> true
  | Monitor.Violated _ -> false

let on_violation t hook = t.violation_hooks <- hook :: t.violation_hooks
let events_seen t = t.events_seen
let coverage t = t.coverage

let pp_verdict ppf = function
  | Monitor.Running -> Format.pp_print_string ppf "pass (running)"
  | Monitor.Satisfied -> Format.pp_print_string ppf "pass (satisfied)"
  | Monitor.Violated v ->
      Format.fprintf ppf "FAIL: %a" Diag.pp_violation v
