(** Stimuli generation helpers (the "stimuli generator" of Fig. 1).

    Deterministic given the supplied random state.  Pattern-driven
    stimuli come from {!Loseq_core.Generate}; this module adds the
    simulation-side plumbing. *)

open Loseq_core

val shuffle : Random.State.t -> 'a list -> 'a list
val choose : Random.State.t -> 'a list -> 'a
(** Raises [Invalid_argument] on an empty list. *)

val replay : Tap.t -> Trace.t -> unit
(** Spawn a process that re-emits a recorded/generated trace on the tap,
    honouring its timestamps (interpreted as picoseconds from now). *)

val drive_valid :
  ?rounds:int -> ?seed:int -> Tap.t -> Pattern.t -> unit
(** Generate a satisfying trace for the pattern and {!replay} it. *)

val drive_violating : ?seed:int -> Tap.t -> Pattern.t -> bool
(** Generate a violating trace (if one is found) and {!replay} it;
    returns whether a violating trace was found. *)
