(** Sequential sharded execution — the shard planner's correctness
    oracle.

    A shard plan ([Analysis.Shard]) claims that a suite may be split
    into independent groups of checkers.  This harness executes the
    claim, sequentially: every shard gets its {e own} kernel, tap and
    hub hosting a {!Loseq_core.Flat.slice} of the suite's flat slab,
    each event of the trace is delivered only to the shards whose
    alphabet slice contains its name, and a sequencer stub merges the
    per-shard verdicts back into suite order.  On a certified plan the
    merged verdicts must equal unsharded {!Suite.check_trace} verdicts
    on every trace — the qcheck gate in [test_shard], and the
    [shard-divergence] check behind [loseq analyze --shard-plan].

    The harness is the single-domain dress rehearsal for multicore
    hosting: same slab slicing, same per-shard deadline wheels, same
    merge point — only the parallelism is missing. *)

open Loseq_core

val run :
  ?metrics:Loseq_obs.Metrics.t ->
  ?final_time:int ->
  plan:int list list ->
  Suite.t ->
  Trace.t ->
  (string * bool) list
(** [run ~plan suite trace] hosts each shard ([plan] lists entry
    indices per shard; it must partition [0 .. n-1], or
    [Invalid_argument] is raised) as its own hub over the
    name-filtered trace and returns the merged [(label, passed)]
    verdicts in suite order.  Every shard finalizes at [final_time]
    (default [Trace.end_time trace] — the {e full} trace's end, so
    deadline semantics match the unsharded run even for shards whose
    filtered slice ends early). *)
