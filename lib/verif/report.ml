type t = { mutable checkers : Checker.t list }

let create () = { checkers = [] }
let add t c = t.checkers <- c :: t.checkers
let checkers t = List.rev t.checkers
let finalize t = List.iter (fun c -> ignore (Checker.finalize c)) (checkers t)
let all_passed t = List.for_all Checker.passed (checkers t)
let failures t = List.filter (fun c -> not (Checker.passed c)) (checkers t)

let summary t =
  List.map (fun c -> (Checker.name c, Checker.verdict c)) (checkers t)

let summary_strings t =
  List.map
    (fun c ->
      ( Checker.name c,
        Format.asprintf "%a" Checker.pp_verdict (Checker.verdict c) ))
    (checkers t)

let pp ppf t =
  let cs = checkers t in
  Format.fprintf ppf "@[<v>=== verification report (%d properties) ==="
    (List.length cs);
  List.iter
    (fun c ->
      Format.fprintf ppf "@,@[<v2>property: %s@,verdict: %a@,%a@]"
        (Checker.name c) Checker.pp_verdict (Checker.verdict c) Coverage.pp
        (Checker.coverage c))
    cs;
  Format.fprintf ppf "@,overall: %s@]"
    (if all_passed t then "PASS" else "FAIL")

let print t = Format.printf "%a@." pp t
