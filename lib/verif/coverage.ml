open Loseq_core

type state_kind = Kwaiting | Kwaiting_started | Kcounting | Kdone

let kind_of_state = function
  | Recognizer.Waiting -> Some Kwaiting
  | Recognizer.Waiting_started -> Some Kwaiting_started
  | Recognizer.Counting _ -> Some Kcounting
  | Recognizer.Done_counting _ -> Some Kdone
  | Recognizer.Idle | Recognizer.Failed -> None

type t = {
  alpha : Name.Set.t;
  counts : (Name.t, int) Hashtbl.t;
  visited : (int * state_kind, unit) Hashtbl.t;
  reachable : int;  (* denominator for state coverage *)
  mutable rounds : int;
  mutable violations : int;
}

let create p =
  let ordering = Pattern.body_ordering p in
  (* Reachable kinds per fragment: only the first fragment is ever
     started bare (hence [waiting]); later fragments start on the event
     that closed their predecessor; single-range fragments have no
     "other range" states. *)
  let reachable =
    List.fold_left
      (fun (acc, index) (f : Pattern.fragment) ->
        let multi = List.length f.ranges > 1 in
        let kinds =
          match (index, multi) with
          | 0, true -> 4 (* waiting, waiting-started, counting, done *)
          | 0, false -> 2 (* waiting, counting *)
          | _, true -> 3 (* waiting-started, counting, done *)
          | _, false -> 1 (* counting *)
        in
        (acc + kinds, index + 1))
      (0, 0) ordering
    |> fst
  in
  {
    alpha = Pattern.alpha p;
    counts = Hashtbl.create 16;
    visited = Hashtbl.create 16;
    reachable;
    rounds = 0;
    violations = 0;
  }

let observe_event t (e : Trace.event) =
  if Name.Set.mem e.name t.alpha then
    let current = Option.value ~default:0 (Hashtbl.find_opt t.counts e.name) in
    Hashtbl.replace t.counts e.name (current + 1)

let observe_states t states =
  List.iteri
    (fun fragment_index frag ->
      List.iter
        (fun state ->
          match kind_of_state state with
          | Some kind -> Hashtbl.replace t.visited (fragment_index, kind) ()
          | None -> ())
        frag)
    states

let record_round t = t.rounds <- t.rounds + 1
let record_violation t = t.violations <- t.violations + 1

let name_counts t =
  Name.Set.elements t.alpha
  |> List.map (fun n ->
         (n, Option.value ~default:0 (Hashtbl.find_opt t.counts n)))

let names_covered t =
  let total = Name.Set.cardinal t.alpha in
  if total = 0 then 1.
  else
    let seen =
      List.length (List.filter (fun (_, c) -> c > 0) (name_counts t))
    in
    float_of_int seen /. float_of_int total

let states_covered t =
  if t.reachable = 0 then 1.
  else float_of_int (Hashtbl.length t.visited) /. float_of_int t.reachable

let rounds t = t.rounds
let violations t = t.violations

let kind_name = function
  | Kwaiting -> "waiting"
  | Kwaiting_started -> "waiting-started"
  | Kcounting -> "counting"
  | Kdone -> "done"

let visited t =
  Hashtbl.fold
    (fun (fragment, kind) () acc -> (fragment, kind_name kind) :: acc)
    t.visited []
  |> List.sort compare

let reachable t = t.reachable

let pp ppf t =
  Format.fprintf ppf
    "@[<v>name coverage: %.0f%%@,state coverage: %.0f%%@,rounds: %d, \
     violations: %d@,events:"
    (100. *. names_covered t)
    (100. *. states_covered t)
    t.rounds t.violations;
  List.iter
    (fun (n, c) -> Format.fprintf ppf "@,  %a: %d" Name.pp n c)
    (name_counts t);
  Format.fprintf ppf "@]"
