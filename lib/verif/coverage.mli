(** Coverage of a pattern by the observed stimuli (the "coverage
    improver" corner of Fig. 1).

    Three complementary measures:
    - {e name coverage}: how often each alphabet name was exercised;
    - {e state coverage}: which recognizer states (per fragment) were
      ever inhabited — unvisited states reveal unexercised orderings;
    - {e round coverage}: completed recognition rounds and reported
      violations. *)

open Loseq_core

type t

val create : Pattern.t -> t
val observe_event : t -> Trace.event -> unit
val observe_states : t -> Recognizer.state list list -> unit
val record_round : t -> unit
val record_violation : t -> unit

val name_counts : t -> (Name.t * int) list
(** Every alphabet name with its observation count (0 when never
    seen). *)

val names_covered : t -> float
(** Fraction of alphabet names observed at least once. *)

val states_covered : t -> float
(** Fraction of reachable (fragment, state-kind) pairs inhabited, over
    the kinds [waiting], [waiting-started], [counting], [done].
    Unreachable pairs are excluded from the denominator: single-range
    fragments have no "other range started" states, and only the first
    fragment can be [waiting] (later fragments start on the event that
    closed their predecessor). *)

val rounds : t -> int
val violations : t -> int

val visited : t -> (int * string) list
(** The inhabited (fragment index, state kind) pairs, for set-union
    reasoning across runs (see {!Explore}). *)

val reachable : t -> int
(** Size of the denominator of {!states_covered}. *)

val pp : Format.formatter -> t -> unit
