open Loseq_core
open Loseq_sim

let shuffle rng l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let choose rng = function
  | [] -> invalid_arg "Stimuli.choose: empty list"
  | l -> List.nth l (Random.State.int rng (List.length l))

let replay tap tr =
  let kernel = Tap.kernel tap in
  Kernel.spawn kernel (fun () ->
      let start = Time.to_ps (Kernel.now kernel) in
      List.iter
        (fun (e : Trace.event) ->
          let at = start + e.time in
          let now = Time.to_ps (Kernel.now kernel) in
          if at > now then Kernel.wait_for kernel (Time.ps (at - now));
          Tap.emit_name tap e.name)
        tr)

let drive_valid ?(rounds = 3) ?(seed = 0x57e9) tap p =
  let rng = Random.State.make [| seed |] in
  replay tap (Generate.valid ~rounds rng p)

let drive_violating ?(seed = 0x57e9) tap p =
  let rng = Random.State.make [| seed |] in
  match Generate.violating rng p with
  | Some tr ->
      replay tap tr;
      true
  | None -> false
