(** Observation taps.

    A tap is the wiring between a design and its assertion checkers
    (Fig. 1): components {!emit} named interface events, subscribers
    (monitors, coverage collectors, trace recorders) receive them in
    emission order, stamped with the current simulation time. *)

open Loseq_core
open Loseq_sim

type t

val create : ?record:bool -> Kernel.t -> t
(** [record] (default true) keeps the full trace in memory. *)

val kernel : t -> Kernel.t

val emit : t -> string -> unit
(** [emit tap "set_irq"] — observe one interface event now. *)

val emit_name : t -> Name.t -> unit

val port : t -> Name.t -> unit -> unit
(** [port t n] binds an emission port for [n] once — the SystemC idiom
    of binding ports at elaboration time.  Calling the returned thunk
    emits one [n] event at the current simulation time, identical to
    {!emit_name} but without re-hashing the name per event. *)

val subscribe : t -> (Trace.event -> unit) -> unit
(** Subscribers are called synchronously, in subscription order. *)

val subscribe_name : t -> Name.t -> (Trace.event -> unit) -> unit
(** [subscribe_name t n f] calls [f] only for events named [n] — the
    alphabet-routed fast path: the name is interned once into the tap's
    dense id space and [emit] reaches only the subscribers registered
    for the emitted name.  Whole-trace subscribers run first, then the
    per-name subscribers, each group in subscription order. *)

val trace : t -> Trace.t
(** Events recorded so far (empty when [record] is false). *)

val count : t -> int
(** Number of events emitted so far (counted even when not
    recording). *)

val now_ps : t -> int
