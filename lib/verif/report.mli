(** Run reports: verdicts and coverage for a set of checkers. *)

type t

val create : unit -> t
val add : t -> Checker.t -> unit

val finalize : t -> unit
(** {!Checker.finalize} every checker. *)

val all_passed : t -> bool
val failures : t -> Checker.t list

val summary : t -> (string * Loseq_core.Backend.verdict) list
(** [(name, verdict)] per checker, in report order. *)

val summary_strings : t -> (string * string) list
(** Like {!summary} with verdicts rendered ({!Checker.pp_verdict},
    full diagnostic text) — the comparison currency of the
    checkpoint-equivalence tests: two runs are equivalent iff their
    summaries are equal. *)

val pp : Format.formatter -> t -> unit
val print : t -> unit
(** [pp] on stdout. *)
