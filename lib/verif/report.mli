(** Run reports: verdicts and coverage for a set of checkers. *)

type t

val create : unit -> t
val add : t -> Checker.t -> unit

val finalize : t -> unit
(** {!Checker.finalize} every checker. *)

val all_passed : t -> bool
val failures : t -> Checker.t list
val pp : Format.formatter -> t -> unit
val print : t -> unit
(** [pp] on stdout. *)
