(* The loseq-profile/1 renderer and the shared quantile estimator. *)

let quantile ~count ~(buckets : (int * int) array) q =
  if count <= 0 then 0.
  else begin
    let rank = q *. float_of_int count in
    let n = Array.length buckets in
    let rec go i prev_bound prev_cum =
      if i >= n then float_of_int prev_bound
        (* mass beyond the last finite bound: clamp (the +Inf bucket
           has no upper edge to interpolate towards) *)
      else
        let bound, cum = buckets.(i) in
        if float_of_int cum >= rank then
          let in_bucket = cum - prev_cum in
          if in_bucket <= 0 then float_of_int bound
          else
            float_of_int prev_bound
            +. (float_of_int (bound - prev_bound)
               *. (rank -. float_of_int prev_cum)
               /. float_of_int in_bucket)
        else go (i + 1) bound cum
    in
    go 0 0 0
  end

(* Same hand-rolled escaping as Trace/Expo: no Json below lib/core. *)
let json_string s =
  let buf = Buffer.create (String.length s + 8) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let hist_json ~count ~sum ~buckets =
  Printf.sprintf
    "{\"count\":%d,\"sum\":%d,\"p50\":%.1f,\"p90\":%.1f,\"p99\":%.1f,\
     \"buckets\":[%s]}"
    count sum
    (quantile ~count ~buckets 0.5)
    (quantile ~count ~buckets 0.9)
    (quantile ~count ~buckets 0.99)
    (String.concat ","
       (Array.to_list
          (Array.map
             (fun (bound, cum) ->
               Printf.sprintf "{\"le\":%d,\"count\":%d}" bound cum)
             buckets)))

let render ?(dispatch_hist = "loseq_hub_dispatch_ns") ~metrics ~checkers () =
  let dispatch =
    List.find_map
      (fun (s : Metrics.sample) ->
        match s.value with
        | Metrics.Histogram_v { sum; count; buckets }
          when s.sample_name = dispatch_hist ->
            Some (hist_json ~count ~sum ~buckets)
        | _ -> None)
      (Metrics.samples metrics)
  in
  Printf.sprintf
    "{\"schema\":\"loseq-profile/1\",\"checkers\":[%s],\"dispatch_ns\":%s}"
    (String.concat ","
       (List.map
          (fun (label, steps) ->
            Printf.sprintf "{\"label\":%s,\"steps\":%d}" (json_string label)
              steps)
          checkers))
    (Option.value ~default:"null" dispatch)
