(** Live load profiles: the [loseq-profile/1] artifact.

    A profile turns one run's telemetry into the measured-load input
    the shard planner wants: per-checker step counts (how many events
    each checker actually consumed) plus the dispatch-latency
    histogram with interpolated quantiles.  [analyze --shard-plan
    --profile] consumes the artifact directly, so plans balance on
    measured load instead of the static cost model.

    This module only {e renders} — lib/obs sits below lib/core, so the
    JSON is assembled by hand and parsing lives downstream
    ({!Loseq_analysis.Shard.profile_of_json}). *)

val quantile : count:int -> buckets:(int * int) array -> float -> float
(** [quantile ~count ~buckets q] estimates the [q]-th quantile
    ([0 < q < 1]) of a histogram from its cumulative
    [(upper bound, count)] buckets by linear interpolation within the
    containing bucket.  Mass beyond the last finite bound clamps to
    that bound; [0.] when [count] is [0]. *)

val render :
  ?dispatch_hist:string ->
  metrics:Metrics.t ->
  checkers:(string * int) list ->
  unit ->
  string
(** The artifact: [{"schema":"loseq-profile/1","checkers":[{"label":..,
    "steps":..},..],"dispatch_ns":{..}}].  [checkers] carries each
    suite entry's measured step count; the dispatch histogram (family
    [dispatch_hist], default ["loseq_hub_dispatch_ns"]) is looked up
    in [metrics] and rendered with its buckets and p50/p90/p99, or
    [null] when absent. *)
