(** Allocation-free runtime metrics.

    A {!t} is a registry of pre-registered instruments.  Registration
    (interning the family name, the label pairs, the bucket layout)
    happens once, at component-creation time; what the hot path holds
    afterwards is a bare mutable cell, so recording is an int store —
    no closure, no string, no allocation on the event path.  Fixed
    bucket bounds keep histograms the same shape: observing is a
    bounded scan over a small immutable array plus three stores.

    Every instrumented component takes an optional [Metrics.t]
    defaulting to {!noop} — a sink that discards registrations (it
    never grows) while still handing out working cells, so a library
    user who never asks for telemetry pays nothing beyond dead stores.

    Instruments are deduplicated per registry: registering the same
    (name, labels) pair twice returns the {e same} cell, so independent
    components contribute to one family total.  [Invalid_argument] is
    raised when the existing instrument has a different kind. *)

type t

val create : unit -> t
(** A live registry: registrations are retained for {!samples} and the
    {!Expo} renderers. *)

val noop : t
(** The shared do-nothing sink (the default everywhere). *)

val is_live : t -> bool
(** [false] exactly for {!noop} — the test a component uses to gate
    genuinely costly instrumentation (clock reads, extra
    subscriptions) that a dead store cannot model. *)

(** {1 Instruments} *)

type counter
type gauge
type histogram

val counter :
  t -> name:string -> help:string -> ?labels:(string * string) list ->
  unit -> counter
(** A monotonically increasing count.  [name] should follow Prometheus
    conventions (snake_case, [_total] suffix). *)

val gauge :
  t -> name:string -> help:string -> ?labels:(string * string) list ->
  unit -> gauge
(** A value that goes up and down (occupancy, depth, lag). *)

val histogram :
  t -> name:string -> help:string -> ?labels:(string * string) list ->
  buckets:int array -> unit -> histogram
(** A distribution over fixed buckets.  [buckets] are the finite upper
    bounds, strictly increasing; the [+Inf] bucket is implicit.
    Raises [Invalid_argument] on an empty or unsorted layout. *)

(** {1 The event path} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> int -> unit
val observe : histogram -> int -> unit

(** {1 Collected sources}

    When a count already lives somewhere else (a tap's emission count,
    a buffer's occupancy), mirroring it with a per-event store is waste:
    register a collect hook instead.  Hooks run, in registration order,
    at the head of {!samples}, {!read_counter} and {!read_gauge} — every
    reader observes freshly collected values, the event path pays
    nothing. *)

val on_collect : t -> (unit -> unit) -> unit
(** Register a hook copying an external source into its instrument
    (typically via {!set_counter} or {!set}).  Ignored on {!noop}. *)

val set_counter : counter -> int -> unit
(** Overwrite a counter's absolute value — for collect hooks mirroring
    an external monotonic source, not for the event path. *)

val sync : t -> unit
(** Run the collect hooks now.  Reading entry points do this
    themselves; call it directly only before poking at instruments
    through retained cells. *)

(** {1 Reading back} *)

val counter_value : counter -> int
val gauge_value : gauge -> int

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of {
      sum : int;
      count : int;
      buckets : (int * int) array;
          (** [(upper bound, cumulative count)] per finite bucket; the
              [+Inf] cumulative count is [count]. *)
    }

type sample = {
  sample_name : string;
  sample_help : string;
  sample_labels : (string * string) list;
  value : value;
}

val samples : t -> sample list
(** Every registered instrument, in registration order.  Empty for
    {!noop}. *)

val read_counter : t -> name:string -> ?labels:(string * string) list ->
  unit -> int option
(** Look one counter up by family name and labels (tests, gates). *)

val read_gauge : t -> name:string -> ?labels:(string * string) list ->
  unit -> int option
