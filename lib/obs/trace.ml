(* The flight recorder.  Three parallel int arrays form the ring; a
   record is one slot in each: the monotonic timestamp, a packed
   kind+category code, and a free-form argument.  [total] only ever
   grows — the write index is [total land mask], so wrap-around
   overwrites the oldest slot and the drop count is derived, never
   stored. *)

type kind = Span_begin | Span_end | Instant | Count

let kind_code = function
  | Span_begin -> 0
  | Span_end -> 1
  | Instant -> 2
  | Count -> 3

let kind_of_code = function
  | 0 -> Span_begin
  | 1 -> Span_end
  | 2 -> Instant
  | _ -> Count

let kind_to_string = function
  | Span_begin -> "span_begin"
  | Span_end -> "span_end"
  | Instant -> "instant"
  | Count -> "count"

type cat = int

type t = {
  cap : int;  (* power of two; 0 for the noop sink *)
  mask : int;
  ts : int array;
  code : int array;  (* kind lor (cat lsl 2) *)
  arg : int array;
  mutable total : int;
  (* interning tables: a category is (track id, name); the track id is
     the Chrome tid. *)
  mutable cat_names : string array;
  mutable cat_tracks : int array;
  mutable ncats : int;
  cat_index : (string, cat) Hashtbl.t;  (* "track\x00name" -> cat *)
  mutable tracks : string array;
  mutable ntracks : int;
  track_index : (string, int) Hashtbl.t;
}

let make cap =
  {
    cap;
    mask = cap - 1;
    ts = Array.make (max cap 1) 0;
    code = Array.make (max cap 1) 0;
    arg = Array.make (max cap 1) 0;
    total = 0;
    cat_names = Array.make 8 "";
    cat_tracks = Array.make 8 0;
    ncats = 0;
    cat_index = Hashtbl.create 16;
    tracks = Array.make 4 "";
    ntracks = 0;
    track_index = Hashtbl.create 8;
  }

let noop = make 0

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  make (pow2 capacity 1)

let is_live t = t.cap > 0
let capacity t = t.cap

let intern_track t track =
  match Hashtbl.find_opt t.track_index track with
  | Some id -> id
  | None ->
      if t.ntracks = Array.length t.tracks then begin
        let grown = Array.make (2 * t.ntracks) "" in
        Array.blit t.tracks 0 grown 0 t.ntracks;
        t.tracks <- grown
      end;
      let id = t.ntracks in
      t.tracks.(id) <- track;
      t.ntracks <- id + 1;
      Hashtbl.add t.track_index track id;
      id

let intern t ?(track = "main") name =
  if t.cap = 0 then 0
  else begin
    let key = track ^ "\x00" ^ name in
    match Hashtbl.find_opt t.cat_index key with
    | Some c -> c
    | None ->
        if t.ncats = Array.length t.cat_names then begin
          let grown = Array.make (2 * t.ncats) "" in
          Array.blit t.cat_names 0 grown 0 t.ncats;
          t.cat_names <- grown;
          let grown = Array.make (2 * t.ncats) 0 in
          Array.blit t.cat_tracks 0 grown 0 t.ncats;
          t.cat_tracks <- grown
        end;
        let c = t.ncats in
        t.cat_names.(c) <- name;
        t.cat_tracks.(c) <- intern_track t track;
        t.ncats <- c + 1;
        Hashtbl.add t.cat_index key c;
        c
  end

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let emit_at t ~ts_ns c k arg =
  if t.cap > 0 then begin
    let i = t.total land t.mask in
    t.ts.(i) <- ts_ns;
    t.code.(i) <- kind_code k lor (c lsl 2);
    t.arg.(i) <- arg;
    t.total <- t.total + 1
  end

let emit t c k arg = if t.cap > 0 then emit_at t ~ts_ns:(now_ns ()) c k arg

let length t = min t.total t.cap
let total t = t.total
let dropped t = max 0 (t.total - t.cap)

type record = {
  ts_ns : int;
  track : string;
  name : string;
  kind : kind;
  arg : int;
}

let iter_slots t f =
  let len = length t in
  for k = t.total - len to t.total - 1 do
    let i = k land t.mask in
    f ~ts_ns:t.ts.(i) ~code:t.code.(i) ~arg:t.arg.(i)
  done

let records t =
  let acc = ref [] in
  iter_slots t (fun ~ts_ns ~code ~arg ->
      let c = code lsr 2 in
      acc :=
        {
          ts_ns;
          track = t.tracks.(t.cat_tracks.(c));
          name = t.cat_names.(c);
          kind = kind_of_code (code land 3);
          arg;
        }
        :: !acc);
  List.rev !acc

(* ---- exports ------------------------------------------------------------ *)

(* lib/obs sits below lib/core, so no [Json] here: strings are escaped
   and assembled by hand, exactly as [Expo] does. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

let oldest_ts t =
  if length t = 0 then 0
  else t.ts.((t.total - length t) land t.mask)

let to_chrome t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let add s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf s
  in
  for tid = 0 to t.ntracks - 1 do
    add
      (Printf.sprintf
         "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\
          \"args\":{\"name\":%s}}"
         tid
         (json_string t.tracks.(tid)))
  done;
  let t0 = oldest_ts t in
  iter_slots t (fun ~ts_ns ~code ~arg ->
      let c = code lsr 2 in
      let tid = t.cat_tracks.(c) in
      let name = json_string t.cat_names.(c) in
      let us = float_of_int (ts_ns - t0) /. 1_000. in
      match kind_of_code (code land 3) with
      | Span_begin ->
          add
            (Printf.sprintf
               "{\"ph\":\"B\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"name\":%s,\
                \"args\":{\"arg\":%d}}"
               tid us name arg)
      | Span_end ->
          add
            (Printf.sprintf
               "{\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"name\":%s,\
                \"args\":{\"arg\":%d}}"
               tid us name arg)
      | Instant ->
          add
            (Printf.sprintf
               "{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"name\":%s,\
                \"s\":\"t\",\"args\":{\"arg\":%d}}"
               tid us name arg)
      | Count ->
          add
            (Printf.sprintf
               "{\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"name\":%s,\
                \"args\":{\"value\":%d}}"
               tid us name arg));
  Buffer.add_string buf
    (Printf.sprintf "],\"displayTimeUnit\":\"ns\",\"otherData\":{\
                     \"dropped\":%d,\"total\":%d}}"
       (dropped t) t.total);
  Buffer.contents buf

let to_ndjson t =
  let buf = Buffer.create 4096 in
  iter_slots t (fun ~ts_ns ~code ~arg ->
      let c = code lsr 2 in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"ts_ns\":%d,\"track\":%s,\"name\":%s,\"kind\":\"%s\",\
            \"arg\":%d}\n"
           ts_ns
           (json_string t.tracks.(t.cat_tracks.(c)))
           (json_string t.cat_names.(c))
           (kind_to_string (kind_of_code (code land 3)))
           arg));
  Buffer.contents buf
