(* The registry is a list of pre-registered instruments; the instruments
   themselves are bare mutable cells.  Everything costly (name interning,
   label rendering, list search) happens at registration time, so the
   event-path operations compile to an int store (plus, for histograms,
   a short bounded scan over the fixed bucket array). *)

type counter = { mutable count : int }
type gauge = { mutable level : int }

type histogram = {
  bounds : int array;  (* strictly increasing upper bounds; +Inf implicit *)
  buckets : int array;  (* length = Array.length bounds + 1 *)
  mutable sum : int;
  mutable observations : int;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type spec = {
  name : string;
  help : string;
  labels : (string * string) list;
  instrument : instrument;
}

type t = {
  live : bool;
  mutable specs_rev : spec list;
  mutable collect_rev : (unit -> unit) list;
}

let create () = { live = true; specs_rev = []; collect_rev = [] }

(* The shared sink library users pay nothing for: registrations are
   discarded (so it never grows), instruments still work — a bump into a
   cell nothing will ever render. *)
let noop = { live = false; specs_rev = []; collect_rev = [] }

let is_live t = t.live

(* ---- registration ------------------------------------------------------ *)

let find t name labels =
  List.find_opt
    (fun s -> String.equal s.name name && s.labels = labels)
    t.specs_rev

let register t ~name ~help ~labels instrument =
  if t.live then
    t.specs_rev <- { name; help; labels; instrument } :: t.specs_rev

let counter t ~name ~help ?(labels = []) () =
  match find t name labels with
  | Some { instrument = Counter c; _ } -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")
  | None ->
      let c = { count = 0 } in
      register t ~name ~help ~labels (Counter c);
      c

let gauge t ~name ~help ?(labels = []) () =
  match find t name labels with
  | Some { instrument = Gauge g; _ } -> g
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")
  | None ->
      let g = { level = 0 } in
      register t ~name ~help ~labels (Gauge g);
      g

let histogram t ~name ~help ?(labels = []) ~buckets () =
  let ok =
    Array.length buckets > 0
    &&
    let sorted = ref true in
    for i = 1 to Array.length buckets - 1 do
      if buckets.(i) <= buckets.(i - 1) then sorted := false
    done;
    !sorted
  in
  if not ok then
    invalid_arg "Metrics.histogram: bucket bounds must be non-empty and \
                 strictly increasing";
  match find t name labels with
  | Some { instrument = Histogram h; _ } -> h
  | Some _ ->
      invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")
  | None ->
      let h =
        {
          bounds = Array.copy buckets;
          buckets = Array.make (Array.length buckets + 1) 0;
          sum = 0;
          observations = 0;
        }
      in
      register t ~name ~help ~labels (Histogram h);
      h

(* ---- the event path ---------------------------------------------------- *)

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let set_counter c v = c.count <- v
let counter_value c = c.count

let set g v = g.level <- v
let gauge_value g = g.level

let observe h v =
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && v > h.bounds.(!i) do
    i := !i + 1
  done;
  h.buckets.(!i) <- h.buckets.(!i) + 1;
  h.sum <- h.sum + v;
  h.observations <- h.observations + 1

(* ---- collected sources ------------------------------------------------- *)

(* Some counts already exist elsewhere (the tap's emission count, a
   buffer's occupancy): rather than pay a per-event store to mirror
   them, a component registers a collect hook that copies the source
   into its instrument when a reader actually looks. *)

let on_collect t f = if t.live then t.collect_rev <- f :: t.collect_rev
let sync t = List.iter (fun f -> f ()) (List.rev t.collect_rev)

(* ---- snapshot ---------------------------------------------------------- *)

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of {
      sum : int;
      count : int;
      buckets : (int * int) array;  (* (upper bound, cumulative count) *)
    }

type sample = {
  sample_name : string;
  sample_help : string;
  sample_labels : (string * string) list;
  value : value;
}

let sample_of_spec s =
  let value =
    match s.instrument with
    | Counter c -> Counter_v c.count
    | Gauge g -> Gauge_v g.level
    | Histogram h ->
        let cum = ref 0 in
        let buckets =
          Array.mapi
            (fun i bound ->
              cum := !cum + h.buckets.(i);
              (bound, !cum))
            h.bounds
        in
        Histogram_v { sum = h.sum; count = h.observations; buckets }
  in
  {
    sample_name = s.name;
    sample_help = s.help;
    sample_labels = s.labels;
    value;
  }

let samples t =
  sync t;
  List.rev_map sample_of_spec t.specs_rev

let read_counter t ~name ?(labels = []) () =
  sync t;
  match find t name labels with
  | Some { instrument = Counter c; _ } -> Some c.count
  | Some _ | None -> None

let read_gauge t ~name ?(labels = []) () =
  sync t;
  match find t name labels with
  | Some { instrument = Gauge g; _ } -> Some g.level
  | Some _ | None -> None
