(** Flight recorder: a fixed-capacity ring of packed trace records.

    Where {!Metrics} answers "how much, in aggregate", the trace ring
    answers "what happened, when": span begin/end pairs around units of
    work (a sampled dispatch, a rollback-and-replay), instants for
    point occurrences (a deadline firing, a retraction) and counter
    samples for evolving quantities (wheel depth).  Records are packed
    into three parallel [int] arrays — timestamp, category/kind code,
    argument — so recording is three stores and an increment; no
    allocation, no formatting on the hot path.  When the ring is full
    the oldest record is overwritten and a drop counter advances, so a
    long run keeps the most recent window and remembers exactly how
    much history it lost.

    Categories are interned once at instrumentation time and carry a
    {e track}: the lane (Chrome "thread") the record renders on, so
    hub dispatch, ingest admission and engine rollback each get their
    own swim-lane in a viewer.

    Exports are cold paths: {!to_chrome} renders the Chrome
    trace-event JSON array (loadable in Perfetto / [chrome://tracing]),
    {!to_ndjson} one JSON object per record for line-oriented
    tooling. *)

type t

val noop : t
(** The shared do-nothing sink (the default everywhere): emissions are
    discarded, interning hands back a dummy category.  Costs one
    branch per emission attempt. *)

val create : ?capacity:int -> unit -> t
(** A live ring holding the most recent [capacity] records (rounded up
    to a power of two, default [65536]).  Raises [Invalid_argument]
    when [capacity <= 0]. *)

val is_live : t -> bool
(** [false] exactly for {!noop} — the test instrumented components use
    to gate clock reads the dead store cannot model. *)

val capacity : t -> int

(** {1 Categories} *)

type cat
(** An interned category: a record name plus the track it renders
    on.  Interning the same (track, name) pair twice returns the same
    category. *)

val intern : t -> ?track:string -> string -> cat
(** [intern t ~track name] registers a category once, at
    component-creation time (default track ["main"]). *)

(** {1 Recording} *)

type kind = Span_begin | Span_end | Instant | Count

val now_ns : unit -> int
(** CLOCK_MONOTONIC, nanoseconds — immune to NTP steps. *)

val emit : t -> cat -> kind -> int -> unit
(** [emit t c k arg] records one event stamped {!now_ns}.  A no-op on
    {!noop}. *)

val emit_at : t -> ts_ns:int -> cat -> kind -> int -> unit
(** Like {!emit} with an explicit timestamp — for span ends that reuse
    a clock value already read for a latency sample, so tracing adds
    no clock reads to an already-sampled path. *)

(** {1 Reading back} *)

val length : t -> int
(** Records currently retained ([<= capacity]). *)

val total : t -> int
(** Records ever emitted. *)

val dropped : t -> int
(** Records overwritten after the ring wrapped:
    [total - length]. *)

type record = {
  ts_ns : int;
  track : string;
  name : string;
  kind : kind;
  arg : int;
}

val records : t -> record list
(** Retained records, oldest first (emission order — timestamps are
    non-decreasing). *)

(** {1 Exports} *)

val to_chrome : t -> string
(** Chrome trace-event JSON: [{"traceEvents":[...]}] with one
    [thread_name] metadata record per track, spans as ["B"]/["E"]
    pairs, instants as ["i"], counter samples as ["C"]; [ts] is
    microseconds relative to the oldest retained record, [pid] 1,
    [tid] the track's intern index.  The drop count rides in
    ["otherData"]. *)

val to_ndjson : t -> string
(** One compact JSON object per line:
    [{"ts_ns":..,"track":..,"name":..,"kind":..,"arg":..}]. *)

val kind_to_string : kind -> string
(** ["span_begin"], ["span_end"], ["instant"], ["count"] — the [kind]
    strings {!to_ndjson} uses. *)
