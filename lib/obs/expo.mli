(** Exposition: rendering a {!Metrics} registry for the outside world.

    Cold-path renderers over {!Metrics.samples} — the hot cells are
    only read, never locked or copied, so scraping a live registry is
    safe at any point between events. *)

val prometheus : Metrics.t -> string
(** Prometheus text exposition format 0.0.4: one [# HELP]/[# TYPE]
    header per family, [name{labels} value] per instrument, histograms
    as cumulative [_bucket{le=..}] series plus [_sum]/[_count]. *)

val json : Metrics.t -> string
(** Compact one-line JSON snapshot:
    [{"metrics":[{"name":..,"labels":{..},"type":..,..}, ..]}] —
    counters and gauges carry ["value"], histograms ["count"], ["sum"]
    and cumulative ["buckets"]. *)

val pp_human : Format.formatter -> Metrics.t -> unit
(** The [--stats] pretty-printer: one aligned line per instrument,
    histograms expanded per bucket with an interpolated
    p50/p90/p99 line ({!Profile.quantile}). *)
