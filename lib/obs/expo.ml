(* Renderers over Metrics.samples: Prometheus text format 0.0.4 and a
   compact JSON snapshot.  Both are cold paths — they walk the registry
   on demand and never touch the instruments' hot cells other than to
   read them. *)

(* Text format 0.0.4 prescribes two distinct escaping rules, and they
   really differ: label values escape backslash, double-quote and
   newline; HELP text escapes only backslash and newline — a quote in
   HELP is passed through verbatim, escaping it would make scrapers
   render a spurious backslash.  JSON strings additionally escape
   control characters. *)
let escape ~json s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' when json -> Buffer.add_string buf "\\r"
      | '\t' when json -> Buffer.add_string buf "\\t"
      | c when json && Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label_value s = escape ~json:false s

let escape_help s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let label_block labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

(* le="..." appended to whatever labels the histogram carries. *)
let bucket_block labels le =
  label_block (labels @ [ ("le", le) ])

(* ---- Prometheus text format 0.0.4 -------------------------------------- *)

let prometheus_type = function
  | Metrics.Counter_v _ -> "counter"
  | Metrics.Gauge_v _ -> "gauge"
  | Metrics.Histogram_v _ -> "histogram"

let prometheus t =
  let buf = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  List.iter
    (fun (s : Metrics.sample) ->
      let name = s.sample_name in
      if not (Hashtbl.mem seen_header name) then begin
        Hashtbl.add seen_header name ();
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" name (escape_help s.sample_help));
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" name (prometheus_type s.value))
      end;
      match s.value with
      | Metrics.Counter_v v | Metrics.Gauge_v v ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" name (label_block s.sample_labels) v)
      | Metrics.Histogram_v { sum; count; buckets } ->
          Array.iter
            (fun (bound, cum) ->
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" name
                   (bucket_block s.sample_labels (string_of_int bound))
                   cum))
            buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" name
               (bucket_block s.sample_labels "+Inf") count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %d\n" name
               (label_block s.sample_labels) sum);
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" name
               (label_block s.sample_labels) count))
    (Metrics.samples t);
  Buffer.contents buf

(* ---- JSON snapshot ------------------------------------------------------ *)

let json_string s = "\"" ^ escape ~json:true s ^ "\""

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_string k ^ ":" ^ json_string v) labels)
  ^ "}"

let json_sample (s : Metrics.sample) =
  let base =
    Printf.sprintf "\"name\":%s,\"labels\":%s" (json_string s.sample_name)
      (json_labels s.sample_labels)
  in
  match s.value with
  | Metrics.Counter_v v ->
      Printf.sprintf "{%s,\"type\":\"counter\",\"value\":%d}" base v
  | Metrics.Gauge_v v ->
      Printf.sprintf "{%s,\"type\":\"gauge\",\"value\":%d}" base v
  | Metrics.Histogram_v { sum; count; buckets } ->
      Printf.sprintf
        "{%s,\"type\":\"histogram\",\"count\":%d,\"sum\":%d,\"buckets\":[%s]}"
        base count sum
        (String.concat ","
           (Array.to_list
              (Array.map
                 (fun (bound, cum) ->
                   Printf.sprintf "{\"le\":%d,\"count\":%d}" bound cum)
                 buckets)))

let json t =
  "{\"metrics\":["
  ^ String.concat "," (List.map json_sample (Metrics.samples t))
  ^ "]}"

(* ---- human-readable table (the --stats view) ---------------------------- *)

let pp_human ppf t =
  let samples = Metrics.samples t in
  if samples = [] then Format.fprintf ppf "(no metrics recorded)@."
  else begin
    let label_str labels =
      match labels with
      | [] -> ""
      | _ ->
          " ["
          ^ String.concat " "
              (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
          ^ "]"
    in
    List.iter
      (fun (s : Metrics.sample) ->
        match s.value with
        | Metrics.Counter_v v | Metrics.Gauge_v v ->
            Format.fprintf ppf "%-44s %12d@."
              (s.sample_name ^ label_str s.sample_labels)
              v
        | Metrics.Histogram_v { sum; count; buckets } ->
            Format.fprintf ppf "%-44s %12d observations, sum %d%s@."
              (s.sample_name ^ label_str s.sample_labels)
              count sum
              (if count = 0 then ""
               else Printf.sprintf ", mean %.1f" (float_of_int sum /. float_of_int count));
            if count > 0 then
              Format.fprintf ppf "  %-42s p50 %.1f  p90 %.1f  p99 %.1f@."
                "quantiles"
                (Profile.quantile ~count ~buckets 0.5)
                (Profile.quantile ~count ~buckets 0.9)
                (Profile.quantile ~count ~buckets 0.99);
            Array.iter
              (fun (bound, cum) ->
                Format.fprintf ppf "  %-42s %12d@."
                  (Printf.sprintf "le %d" bound)
                  cum)
              buckets)
      samples
  end
