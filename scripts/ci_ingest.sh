#!/usr/bin/env bash
# Live-ingestion end-to-end gate.  Each check is a named gate (grep the
# name in the CI log to find it):
#   convert-roundtrip     CSV -> LSQB binary -> CSV is byte-identical
#   stream-batch-agreement  serve over stdin decides what `suite` decides
#   crash-recovery        kill -TERM mid-stream writes a checkpoint;
#                         --resume with a full replay yields verdicts
#                         identical to the uninterrupted streaming run
#   ingest-throughput     bench ingest section writes BENCH_ingest.json
#   strict-reorder        --strict-reorder refuses (exit 2) a lateness
#                         window larger than the suite's certified
#                         lateness-robustness bound, and still serves
#                         at a certified window
#   telemetry             serve --metrics-addr (ephemeral port,
#                         discovered from the metrics-listening record)
#                         answers /metrics with
#                         loseq_events_dispatched_total equal to the
#                         number of events fed; the bench obs section
#                         writes BENCH_obs.json, whose 5% live-vs-noop
#                         overhead bound is advisory here (wall-clock
#                         micro-benchmarks are noisy on shared CI
#                         runners)
#   flat-agreement        serve --backend flat decides what the
#                         compiled streaming run decides; at 64
#                         checkers the flat v2 checkpoint (one varint
#                         blob) encodes smaller than the per-checker
#                         JSON v1; a compiled v1 checkpoint resumes
#                         into flat hosting
#   speculative-serve     serve --ooo on the K-scrambled twin trace
#                         settles verdict records byte-identical to
#                         the buffered serve, with zero rollbacks (the
#                         ipu suite certificate commutes every late
#                         event) and no checkpoint support
#   verdict-provenance    failed serve verdicts carry a provenance
#                         chain, and explain-verdict replays the
#                         minimized chain to the same Fail on the
#                         compiled and flat backends
#   artifact-provenance   every BENCH_*.json carries the provenance
#                         stamp (git revision + toolchain)
#

# Run from the repository root:  scripts/ci_ingest.sh
set -euo pipefail

LOSEQ="dune exec --no-build bin/loseq_cli.exe --"
SUITE=examples/specs/ipu.suite
TRACE=examples/traces/ipu.csv
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"; jobs -p | xargs -r kill 2>/dev/null || true' EXIT

dune build bin/loseq_cli.exe bench/main.exe

# Named gates: one banner per check so a red CI log reads as
# "gate NAME failed", not a bare line number.
gate() { echo; echo "== gate: $1 =="; }

# Verdict records carry a "provenance" chain since 1.9.0: a 1-minimal
# failure witness whose events depend on capture order (arrival order,
# checkpoint cut-off), so runs that agree on every verdict may carry
# different witnesses.  Agreement checks compare modulo the member; it
# is appended last, so stripping it restores the closing brace.
strip_prov() { sed 's/,"provenance":.*$/}/' "$1"; }

gate "convert-roundtrip"
$LOSEQ convert "$TRACE" -o "$WORK/ipu.lsqb"
$LOSEQ convert "$WORK/ipu.lsqb" -o "$WORK/ipu.back.csv"
cmp "$TRACE" "$WORK/ipu.back.csv"
echo "round-trip OK ($(wc -c < "$WORK/ipu.lsqb") bytes binary)"

gate "stream-batch-agreement"
# the example trace genuinely violates one property, so both exit 1
batch_status=0
$LOSEQ suite "$SUITE" -f "$TRACE" > "$WORK/batch.out" || batch_status=$?
stream_status=0
$LOSEQ serve --suite "$SUITE" < "$WORK/ipu.lsqb" > "$WORK/stream.ndjson" \
  || stream_status=$?
test "$batch_status" -eq "$stream_status"
grep '"type": *"verdict"' "$WORK/stream.ndjson" > "$WORK/stream.verdicts"
# each suite entry must reach the same PASS/FAIL in both runs
while read -r line; do
  name=$(sed 's/.*"property": *"\([^"]*\)".*/\1/' <<< "$line")
  passed=$(sed 's/.*"passed": *\(true\|false\).*/\1/' <<< "$line")
  case "$passed" in
    true)  grep -q "PASS.*$name\|$name.*PASS" "$WORK/batch.out" ;;
    false) grep -q "FAIL.*$name\|$name.*FAIL" "$WORK/batch.out" ;;
  esac
done < "$WORK/stream.verdicts"
echo "verdicts agree (exit $batch_status)"

gate "crash-recovery"
SOCK="$WORK/loseq.sock"
CKPT="$WORK/loseq.ckpt"
$LOSEQ serve --suite "$SUITE" --socket "$SOCK" \
  --checkpoint "$CKPT" --checkpoint-every 50 \
  > "$WORK/killed.ndjson" &
SERVER=$!
# send roughly half the stream, then hold the connection open so the
# server is mid-stream (not at EOF) when the signal lands
( head -c 1000 "$WORK/ipu.lsqb"; sleep 30 ) | $LOSEQ feed --socket "$SOCK" &
FEEDER=$!
for _ in $(seq 50); do
  grep -q '"type": *"checkpoint"' "$WORK/killed.ndjson" 2>/dev/null && break
  sleep 0.2
done
kill -TERM "$SERVER"
wait "$SERVER"
kill "$FEEDER" 2>/dev/null || true
wait "$FEEDER" 2>/dev/null || true
test -s "$CKPT"
grep -q '"type": *"interrupted"' "$WORK/killed.ndjson"
echo "checkpoint written at position $(grep -o '"position": *[0-9]*' "$WORK/killed.ndjson" | tail -1 | grep -o '[0-9]*')"

resume_status=0
$LOSEQ serve --suite "$SUITE" --checkpoint "$CKPT" --resume \
  < "$WORK/ipu.lsqb" > "$WORK/resumed.ndjson" || resume_status=$?
test "$resume_status" -eq "$stream_status"
grep '"type": *"verdict"' "$WORK/resumed.ndjson" > "$WORK/resumed.verdicts"
cmp <(strip_prov "$WORK/stream.verdicts") <(strip_prov "$WORK/resumed.verdicts")
echo "resumed verdicts identical to the uninterrupted run"

gate "ingest-throughput"
dune exec --no-build bench/main.exe -- ingest
test -s BENCH_ingest.json
grep -q '"within_2x": *true' BENCH_ingest.json
echo "BENCH_ingest.json written, within the 2x bound"

gate "strict-reorder"
# ipu.suite certifies lateness 0, so hosting it with --lateness 64
# under --strict-reorder must refuse before reading any event ...
strict_status=0
$LOSEQ serve --suite "$SUITE" --strict-reorder --lateness 64 \
  < "$WORK/ipu.lsqb" > "$WORK/strict.ndjson" || strict_status=$?
test "$strict_status" -eq 2
grep -q '"type": *"reorder-certificate"' "$WORK/strict.ndjson"
grep -q '"robust": *false' "$WORK/strict.ndjson"
grep -q 'refusing under --strict-reorder' "$WORK/strict.ndjson"
# ... while a certified window (in-order hosting) serves normally and
# decides exactly what the unrestricted streaming run decided
ok_status=0
$LOSEQ serve --suite "$SUITE" --strict-reorder \
  < "$WORK/ipu.lsqb" > "$WORK/strict_ok.ndjson" || ok_status=$?
test "$ok_status" -eq "$stream_status"
grep -q '"robust": *true' "$WORK/strict_ok.ndjson"
echo "strict-reorder refuses lateness 64 (exit 2), serves at lateness 0"

gate "telemetry"
# fed count = CSV data lines (the header row is not an event)
EVENTS=$(( $(wc -l < "$TRACE") - 1 ))
MSOCK="$WORK/metrics.sock"
metrics_status=0
# port 0: the kernel picks a free ephemeral port (no collision with
# concurrent CI jobs); the server reports it in a metrics-listening
# record before opening the input
$LOSEQ serve --suite "$SUITE" --socket "$MSOCK" --metrics-addr 127.0.0.1:0 \
  --stats-interval 100 > "$WORK/metrics.ndjson" &
MSERVER=$!
for _ in $(seq 50); do
  grep -q '"type": *"metrics-listening"' "$WORK/metrics.ndjson" 2>/dev/null \
    && break
  sleep 0.2
done
MPORT=$(grep -o '"port": *[0-9]*' "$WORK/metrics.ndjson" | head -1 | grep -o '[0-9]*$')
test -n "$MPORT"
MADDR=127.0.0.1:$MPORT
for _ in $(seq 50); do test -S "$MSOCK" && break; sleep 0.2; done
$LOSEQ feed --socket "$MSOCK" "$WORK/ipu.lsqb"
# the endpoint stays up after end of stream; wait for the summary so
# every event is counted before scraping
for _ in $(seq 50); do
  grep -q '"type": *"summary"' "$WORK/metrics.ndjson" 2>/dev/null && break
  sleep 0.2
done
if command -v curl > /dev/null; then
  curl -fsS "http://$MADDR/metrics" > "$WORK/scrape.prom"
else
  $LOSEQ stats --addr "$MADDR" --prometheus > "$WORK/scrape.prom"
fi
grep -q "^loseq_events_dispatched_total $EVENTS$" "$WORK/scrape.prom"
grep -q '^loseq_reorder_dropped_late_total 0$' "$WORK/scrape.prom"
grep -q '^loseq_records_decoded_total' "$WORK/scrape.prom"
grep -q '"type": *"stats"' "$WORK/metrics.ndjson"
kill -TERM "$MSERVER"
wait "$MSERVER" || metrics_status=$?
test "$metrics_status" -eq "$stream_status"
echo "scraped loseq_events_dispatched_total = $EVENTS (the fed count)"

# overhead artifact: live registry vs the noop sink (release build —
# the bench measures inlined hot paths, not dev -opaque calls).  The
# 5% bound is advisory in CI: the artifact must exist, but a timing
# miss on a noisy shared runner warns instead of failing the gate.
dune build --profile release bench/main.exe
dune exec --profile release --no-build bench/main.exe -- obs
test -s BENCH_obs.json
if grep -q '"within_5pct": *true' BENCH_obs.json; then
  echo "BENCH_obs.json written, within the 5% bound"
else
  echo "WARNING: BENCH_obs.json reports live-sink overhead above the 5%" \
       "target — likely CI timing noise; inspect the uploaded artifact" >&2
fi

gate "flat-agreement"
# the suite-level flat engine decides exactly what the compiled
# streaming run decided, record for record
flat_status=0
$LOSEQ serve --suite "$SUITE" --backend flat < "$WORK/ipu.lsqb" \
  > "$WORK/flat.ndjson" || flat_status=$?
test "$flat_status" -eq "$stream_status"
grep '"type": *"verdict"' "$WORK/flat.ndjson" > "$WORK/flat.verdicts"
cmp "$WORK/stream.verdicts" "$WORK/flat.verdicts"
echo "flat streaming verdicts identical to compiled (exit $flat_status)"

# 64 disjoint checkers: the flat v2 checkpoint (one varint blob) must
# encode smaller than the per-checker JSON v1 the compiled path writes
BIGSUITE="$WORK/big.suite"
BIGCSV="$WORK/big.csv"
: > "$BIGSUITE"
printf 'time,name\n' > "$BIGCSV"
t=0
for i in $(seq 0 63); do
  printf 'p%d: {a%d, b%d} <<! go%d\n' "$i" "$i" "$i" "$i" >> "$BIGSUITE"
  for nm in a b go; do
    printf '%d,%s%d\n' "$t" "$nm" "$i" >> "$BIGCSV"
    t=$((t + 1))
  done
done
$LOSEQ convert "$BIGCSV" -o "$WORK/big.lsqb"
ckpt_bytes() {  # last "bytes" field in an NDJSON checkpoint record
  grep '"type": *"checkpoint"' "$1" | grep -o '"bytes": *[0-9]*' \
    | tail -1 | grep -o '[0-9]*$'
}
$LOSEQ serve --suite "$BIGSUITE" --checkpoint "$WORK/big_v1.ckpt" \
  --checkpoint-every 64 < "$WORK/big.lsqb" > "$WORK/big_v1.ndjson"
$LOSEQ serve --suite "$BIGSUITE" --backend flat \
  --checkpoint "$WORK/big_v2.ckpt" --checkpoint-every 64 \
  < "$WORK/big.lsqb" > "$WORK/big_v2.ndjson"
V1=$(ckpt_bytes "$WORK/big_v1.ndjson")
V2=$(ckpt_bytes "$WORK/big_v2.ndjson")
test -n "$V1" && test -n "$V2"
test "$V2" -lt "$V1"
echo "flat v2 checkpoint $V2 B < per-checker v1 $V1 B at 64 checkers"

# cross-backend resume: the compiled v1 checkpoint from step 3
# restores into flat hosting and replays to the same verdicts
xresume_status=0
$LOSEQ serve --suite "$SUITE" --checkpoint "$CKPT" --resume --backend flat \
  < "$WORK/ipu.lsqb" > "$WORK/flat_resumed.ndjson" || xresume_status=$?
test "$xresume_status" -eq "$stream_status"
grep '"type": *"verdict"' "$WORK/flat_resumed.ndjson" \
  > "$WORK/flat_resumed.verdicts"
cmp <(strip_prov "$WORK/stream.verdicts") <(strip_prov "$WORK/flat_resumed.verdicts")
echo "compiled v1 checkpoint resumed into flat hosting, verdicts identical"

gate "speculative-serve"
# examples/traces/ipu_ooo.csv is a K-bounded scramble of ipu.csv whose
# most delayed event is 75000 ticks late; both hosting modes must
# settle on exactly the verdicts of the chronological run (modulo the
# provenance witness, which is arrival-order)
OOOTRACE=examples/traces/ipu_ooo.csv
buf_ooo_status=0
$LOSEQ serve --suite "$SUITE" --lateness 75000 < "$OOOTRACE" \
  > "$WORK/buffered_ooo.ndjson" || buf_ooo_status=$?
spec_status=0
$LOSEQ serve --suite "$SUITE" --ooo --lateness 75000 < "$OOOTRACE" \
  > "$WORK/spec.ndjson" || spec_status=$?
test "$buf_ooo_status" -eq "$stream_status"
test "$spec_status" -eq "$stream_status"
# verdicts must agree byte-for-byte up to the provenance chains: both
# modes capture a valid 1-minimal witness, but capture is arrival-order
# so the witness events may differ
grep '"type": *"verdict"' "$WORK/buffered_ooo.ndjson" > "$WORK/buffered_ooo.verdicts"
grep '"type": *"verdict"' "$WORK/spec.ndjson" > "$WORK/spec.verdicts"
cmp <(strip_prov "$WORK/buffered_ooo.verdicts") <(strip_prov "$WORK/spec.verdicts")
# also identical to the chronological compiled run of step 2
cmp <(strip_prov "$WORK/stream.verdicts") <(strip_prov "$WORK/spec.verdicts")
# the certificate fast path must absorb every late event in place
grep '"type": *"summary"' "$WORK/spec.ndjson" | grep -q '"rollbacks": *0'
grep '"type": *"summary"' "$WORK/spec.ndjson" | grep -qv '"commute_hits": *0,'
grep -q '"mode": *"speculative"' "$WORK/spec.ndjson"
# speculative state is not checkpointable: the combination refuses
ooock_status=0
$LOSEQ serve --suite "$SUITE" --ooo --checkpoint "$WORK/ooo.ckpt" \
  < "$OOOTRACE" > "$WORK/ooock.ndjson" || ooock_status=$?
test "$ooock_status" -eq 2
grep -q 'does not support' "$WORK/ooock.ndjson"
echo "speculative settled verdicts byte-identical to buffered (exit $spec_status)"

gate "verdict-provenance"
# every failed verdict must carry a provenance chain that replays to
# the same Fail standalone — checked by explain-verdict, which
# minimizes and replays on the compiled AND flat backends (exit 0
# exactly when both reproduce the Fail).  The served chain above and
# the explain-verdict chain come from the same recorder, so the gate
# holds the NDJSON member and the replay tool together.
grep '"passed":false' "$WORK/stream.verdicts" | grep -q '"provenance"'
$LOSEQ explain-verdict --suite "$SUITE" --property recognition_bounded \
  --format json "$TRACE" > "$WORK/explain.json"
grep -q '"compiled_fails": *true' "$WORK/explain.json"
grep -q '"flat_fails": *true' "$WORK/explain.json"
# a passing property has nothing to explain (exit 1, no chain)
explain_pass=0
$LOSEQ explain-verdict --suite "$SUITE" --property lock_protocol \
  "$TRACE" > /dev/null 2>&1 || explain_pass=$?
test "$explain_pass" -eq 1
echo "failed verdicts carry chains; chain replays to the same Fail on both backends"

gate "artifact-provenance"
# every BENCH_*.json this run produced must carry the provenance stamp
# (git revision + toolchain) so uploaded artifacts are traceable
for artifact in BENCH_*.json; do
  test -s "$artifact"
  grep -q '"provenance"' "$artifact"
  grep -q '"git_rev"' "$artifact"
  echo "$artifact: provenance stamp present"
done

echo "ingest gate: all checks passed"
