(* Benchmark harness: regenerates every evaluation artifact of the paper.

   Section 1  — Figure 6: the Drct vs ViaPSL comparison table, with the
                paper's reported numbers, our analytic models and the
                measured values of the real OCaml monitors.
   Section 2  — Section-7 complexity claims: parameter sweeps showing the
                published Θ-shapes (range width, fragment width, chain
                length).
   Section 3  — Case-study workload: the properties monitored on traces
                from the Fig. 2 virtual platform.
   Section 4  — Bechamel wall-clock micro-benchmarks of Monitor.step for
                each Fig. 6 configuration.

   Run with: dune exec bench/main.exe *)

open Loseq_core

let pat = Parser.pattern_exn

let line = String.make 78 '-'

let section title =
  Format.printf "@.%s@.%s@.%s@." line title line

(* ---- provenance --------------------------------------------------------- *)

(* Every BENCH_*.json artifact records where it came from: the git
   revision of the tree that produced it, the backend it exercises,
   and the toolchain — so a number in CI can be traced to a commit. *)
let read_first_line path =
  match open_in path with
  | ic ->
      let l = try input_line ic with End_of_file -> "" in
      close_in ic;
      Some (String.trim l)
  | exception Sys_error _ -> None

let git_rev () =
  (* benches may run from the project root or a dune sandbox: walk up a
     few levels looking for .git/HEAD, then follow one "ref: " hop. *)
  let rec find dir depth =
    if depth > 4 then None
    else if Sys.file_exists (Filename.concat dir ".git/HEAD") then Some dir
    else find (Filename.concat dir Filename.parent_dir_name) (depth + 1)
  in
  match find Filename.current_dir_name 0 with
  | None -> "unknown"
  | Some dir -> (
      match read_first_line (Filename.concat dir ".git/HEAD") with
      | None | Some "" -> "unknown"
      | Some head ->
          if String.length head > 5 && String.sub head 0 5 = "ref: " then
            let ref_path =
              String.trim (String.sub head 5 (String.length head - 5))
            in
            Option.value ~default:"unknown"
              (read_first_line
                 (Filename.concat (Filename.concat dir ".git") ref_path))
          else head)

let provenance_json ~backend =
  Printf.sprintf
    {|"provenance": { "git_rev": %S, "backend": %S, "ocaml": %S, "loseq_version": %S }|}
    (git_rev ()) backend Sys.ocaml_version Version.current

(* Mean measured ops/event and measured storage of the real monitor on a
   satisfying workload. *)
let measured ?(rounds = 20) p =
  let rng = Random.State.make [| 0xbe7c |] in
  let trace = Generate.valid ~rounds ~max_run:4 rng p in
  let ops = ref 0 in
  let monitor = Monitor.create ~ops p in
  List.iter (fun e -> ignore (Monitor.step monitor e)) trace;
  let events = max 1 (Trace.length trace) in
  (!ops / events, Monitor.space_bits monitor, events)

(* ---- Section 1: Figure 6 ---------------------------------------------- *)

type fig6_row = {
  label : string;
  source : string;
  paper_drct : int * int;
  paper_viapsl : string * string;
}

let fig6_rows =
  [
    { label = "(n << i, true)"; source = "n <<! i";
      paper_drct = (80, 192); paper_viapsl = ("238+D", "896+D") };
    { label = "(n[100,60K] << i, true)"; source = "n[100,60000] <<! i";
      paper_drct = (80, 192); paper_viapsl = ("4x10^11+D", "2x10^12+D") };
    { label = "(({n1..n4},and) << i, false)"; source = "{n1, n2, n3, n4} << i";
      paper_drct = (230, 1132); paper_viapsl = ("1785+D", "6720+D") };
    { label = "(({n1..n5},and) << i, false)";
      source = "{n1, n2, n3, n4, n5} << i";
      paper_drct = (280, 1568); paper_viapsl = ("2142+D", "8064+D") };
    { label = "(n1 => n2<n3<n4, T)";
      source = "n1 => n2 < n3 < n4 within 1000";
      paper_drct = (296, 1051); paper_viapsl = ("1428+D", "5376+D") };
    { label = "(n1 => n2[100,60K]<n3<n4, T)";
      source = "n1 => n2[100,60000] < n3 < n4 within 1000";
      paper_drct = (296, 1051); paper_viapsl = ("4x10^11+D", "2x10^12+D") };
  ]

let human n =
  if n < 100_000 then string_of_int n
  else Printf.sprintf "%.1e" (float_of_int n)

let figure6 () =
  section "Figure 6 - Comparison of Drct and ViaPSL strategies";
  Format.printf
    "%-34s | %18s | %18s | %18s@."
    "configuration" "Drct paper" "Drct model" "Drct measured";
  Format.printf
    "%-34s | %18s | %18s | %18s@."
    "" "(ops, bits)" "(ops, bits)" "(ops, bits)";
  Format.printf "%s@." line;
  List.iter
    (fun row ->
      let p = pat row.source in
      let model = Cost.drct p in
      let m_ops, m_bits, _ = measured p in
      let paper_ops, paper_bits = row.paper_drct in
      Format.printf "%-34s | %8d, %8d | %8d, %8d | %8d, %8d@." row.label
        paper_ops paper_bits model.Cost.ops_per_event model.Cost.space_bits
        m_ops m_bits)
    fig6_rows;
  Format.printf "@.%-34s | %24s | %24s@." "configuration" "ViaPSL paper"
    "ViaPSL model (ops, bits)";
  Format.printf "%s@." line;
  List.iter
    (fun row ->
      let p = pat row.source in
      let via = Loseq_psl.Cost.via_psl p in
      let paper_ops, paper_bits = row.paper_viapsl in
      Format.printf "%-34s | %11s, %11s | %10s+D, %10s+D  (D=%s)@." row.label
        paper_ops paper_bits
        (human via.Loseq_psl.Cost.ops_per_event)
        (human via.Loseq_psl.Cost.space_bits)
        (human via.Loseq_psl.Cost.delta))
    fig6_rows;
  Format.printf
    "@.shape check: Drct model reproduces the paper's Drct column exactly;@.";
  Format.printf
    "ranges do not affect Drct at all, while they push ViaPSL to ~10^11 ops@.";
  Format.printf "and ~10^12 bits, as reported.@."

(* ---- Section 2: complexity sweeps -------------------------------------- *)

let sweep_range_width () =
  section
    "Sweep A (S7): range width w in n[1,w] - Drct flat, ViaPSL quadratic";
  Format.printf "%-10s | %12s | %12s | %14s | %14s@." "width" "Drct ops"
    "Drct bits" "ViaPSL ops" "ViaPSL bits";
  List.iter
    (fun w ->
      let p =
        Pattern.antecedent ~repeated:true
          [ Pattern.fragment [ Pattern.range ~lo:1 ~hi:w (Name.v "n") ] ]
          ~trigger:(Name.v "i")
      in
      let d = Cost.drct p in
      let v = Loseq_psl.Cost.via_psl p in
      Format.printf "%-10d | %12d | %12d | %14s | %14s@." w
        d.Cost.ops_per_event d.Cost.space_bits
        (human v.Loseq_psl.Cost.ops_per_event)
        (human v.Loseq_psl.Cost.space_bits))
    [ 1; 10; 100; 1_000; 10_000; 60_000 ]

let sweep_fragment_width () =
  section
    "Sweep B (S7): names per fragment k - Drct time THETA(max |alpha(F)|)";
  Format.printf "%-10s | %12s | %12s | %12s | %14s@." "k" "Drct model"
    "Drct meas." "Drct bits" "ViaPSL ops";
  List.iter
    (fun k ->
      let ranges =
        List.init k (fun j -> Pattern.range (Name.v (Printf.sprintf "n%d" j)))
      in
      let p =
        Pattern.antecedent [ Pattern.fragment ranges ] ~trigger:(Name.v "i")
      in
      let d = Cost.drct p in
      let m_ops, _, _ = measured p in
      let v = Loseq_psl.Cost.via_psl p in
      Format.printf "%-10d | %12d | %12d | %12d | %14s@." k
        d.Cost.ops_per_event m_ops d.Cost.space_bits
        (human v.Loseq_psl.Cost.ops_per_event))
    [ 1; 2; 4; 8; 16; 32 ]

let sweep_chain_length () =
  section
    "Sweep C (S7): q chained single-name fragments - Drct per-event time flat";
  Format.printf "%-10s | %12s | %12s | %12s | %14s@." "q" "Drct model*"
    "Drct meas." "Drct bits" "ViaPSL ops";
  Format.printf "  (*) the analytic model is calibrated on total names; the \
                 measured column@.      shows the max-active-fragment \
                 behaviour the paper's THETA describes.@.";
  List.iter
    (fun q ->
      let fragments =
        List.init q (fun j -> Pattern.single (Name.v (Printf.sprintf "n%d" j)))
      in
      let p = Pattern.antecedent fragments ~trigger:(Name.v "i") in
      let d = Cost.drct p in
      let m_ops, _, _ = measured p in
      let v = Loseq_psl.Cost.via_psl p in
      Format.printf "%-10d | %12d | %12d | %12d | %14s@." q
        d.Cost.ops_per_event m_ops d.Cost.space_bits
        (human v.Loseq_psl.Cost.ops_per_event))
    [ 1; 2; 4; 8; 16; 32 ]

(* ---- Section 2b: empirical ViaPSL (progression) ------------------------ *)

(* The ViaPSL numbers above come from a cost model; with the progression
   monitor the strategy can also be *executed* and measured, monitor
   against monitor, on identical satisfying workloads. *)
let empirical_viapsl () =
  section
    "Empirical Drct vs ViaPSL: both monitors executed on the same workload";
  Format.printf "%-34s | %10s | %12s | %12s@." "configuration"
    "Drct ops" "PSL rewrites" "PSL peak |f|";
  Format.printf
    "  (ops and rewrites per event; rows with 60000-wide ranges cannot@.";
  Format.printf
    "   even materialize their PSL formula - the point of the comparison)@.";
  List.iter
    (fun row ->
      let p = pat row.source in
      let rng = Random.State.make [| 0xd0c |] in
      let trace = Generate.valid ~rounds:10 ~max_run:4 rng p in
      let events = max 1 (Trace.length trace) in
      let drct_ops, _, _ = measured p in
      match Loseq_psl.Translate.to_psl p with
      | formula ->
          let monitor = Loseq_psl.Progress.create formula in
          List.iter
            (fun (e : Trace.event) ->
              ignore (Loseq_psl.Progress.step monitor e.Trace.name))
            (List.map
               (fun n -> { Trace.name = n; time = 0 })
               (Loseq_psl.Translate.expand_trace p (Trace.names trace)));
          Format.printf "%-34s | %10d | %12d | %12d@." row.label drct_ops
            (Loseq_psl.Progress.steps monitor / events)
            (Loseq_psl.Progress.peak_size monitor)
      | exception Invalid_argument _ ->
          Format.printf "%-34s | %10d | %12s | %12s@." row.label drct_ops
            "(too wide)" "(too wide)")
    fig6_rows

(* ---- Section 2c: explicit product automata ----------------------------- *)

let automaton_sizes () =
  section
    "Explicit monitor automata: the explosion the modular encoding avoids";
  Format.printf "%-34s | %12s | %12s | %12s@." "configuration" "DFA states"
    "minimized" "Drct bits";
  List.iter
    (fun (label, src) ->
      let p = pat src in
      let drct = Cost.drct p in
      match Automaton.of_pattern ~max_states:20000 p with
      | a ->
          let m = Automaton.minimize a in
          Format.printf "%-34s | %12d | %12d | %12d@." label
            a.Automaton.num_states m.Automaton.num_states drct.Cost.space_bits
      | exception Automaton.Too_many_states n ->
          Format.printf "%-34s | %9d+... | %12s | %12d@." label n "-"
            drct.Cost.space_bits)
    [
      ("(n << i, true)", "n <<! i");
      ("(({n1..n4},and) << i, false)", "{n1, n2, n3, n4} << i");
      ("(({n1..n5},and) << i, false)", "{n1, n2, n3, n4, n5} << i");
      ("fig. 4 property", "{n1, n2} < {n3[2,8] | n4} < n5 << i");
      ("(n1 => n2<n3<n4, T) shape", "n1 => n2 < n3 < n4 within 1000");
      ("n[1,2000] (counter blow-up)", "n[1,2000] <<! i");
    ]

(* ---- Section 2d: ablation - online monitor vs oracle re-checking ------- *)

let ablation_oracle () =
  section
    "Ablation: online Drct monitor vs per-event oracle re-checking";
  let p = pat "{a, b} < {c[2,8] | d} < e <<! i" in
  let rng = Random.State.make [| 77 |] in
  Format.printf "%-10s | %14s | %14s@." "events" "monitor (s)" "oracle (s)";
  List.iter
    (fun rounds ->
      let trace = Generate.valid ~rounds ~max_run:4 rng p in
      let events = Trace.length trace in
      let t0 = Sys.time () in
      let monitor = Monitor.create p in
      List.iter (fun e -> ignore (Monitor.step monitor e)) trace;
      let monitor_time = Sys.time () -. t0 in
      let t0 = Sys.time () in
      let consumed = ref [] in
      List.iter
        (fun e ->
          consumed := e :: !consumed;
          ignore (Semantics.holds p (List.rev !consumed)))
        trace;
      let oracle_time = Sys.time () -. t0 in
      Format.printf "%-10d | %14.4f | %14.4f@." events monitor_time
        oracle_time)
    [ 20; 100; 300 ]

(* ---- Section 3: case-study workload ------------------------------------ *)

let case_study () =
  section "Case study (Section 3): properties on the Fig. 2 platform";
  let open Loseq_platform in
  let open Loseq_verif in
  let run_one label config =
    let soc = Soc.create ~config () in
    let report = Soc.attach_standard_checkers soc in
    let t0 = Sys.time () in
    Soc.run soc;
    Report.finalize report;
    let dt = Sys.time () -. t0 in
    Format.printf
      "%-28s | %6d events | %d recognitions | verdicts: %-9s | %5.2fs host@."
      label
      (Tap.count (Soc.tap soc))
      (Ipu.recognitions (Soc.ipu soc))
      (if Report.all_passed report then "all PASS"
       else
         Printf.sprintf "%d FAIL" (List.length (Report.failures report)))
      dt
  in
  run_one "correct firmware" Soc.default_config;
  run_one "bug: start-before-config"
    { Soc.default_config with cpu_bug = Some Cpu.Start_before_config;
      presses = 1 };
  run_one "bug: skip gl_size"
    { Soc.default_config with cpu_bug = Some Cpu.Skip_gl_size; presses = 1 };
  run_one "bug: double gl_addr"
    { Soc.default_config with cpu_bug = Some Cpu.Double_gl_addr; presses = 1 };
  run_one "bug: slow IPU (deadline)"
    { Soc.default_config with slow_ipu = true; presses = 1 }

(* ---- Section 3b: hosted dispatch --------------------------------------- *)

(* N checkers with disjoint alphabets on one tap.  Broadcast hosting
   steps every structural monitor on every event (N steps/event); the
   hub routes each event to the one compiled backend whose alphabet
   contains it (1 step/event) - the hosted realization of the paper's
   THETA(max |alpha(F_i)|) per-event bound. *)
let hosted_dispatch () =
  section
    "Hosted dispatch: N checkers on one tap - broadcast Drct vs routed hub";
  let open Loseq_sim in
  let open Loseq_verif in
  let target_events = 120_000 in
  let bench n =
    let patterns =
      List.init n (fun i -> pat (Printf.sprintf "{a%d, b%d} <<! go%d" i i i))
    in
    let names =
      Array.init n (fun i ->
          [|
            Name.v (Printf.sprintf "a%d" i);
            Name.v (Printf.sprintf "b%d" i);
            Name.v (Printf.sprintf "go%d" i);
          |])
    in
    (* Round-robin satisfying workload: a_i b_i go_i, cycling i. *)
    let events = target_events / (3 * n) * 3 * n in
    let emit_all tap =
      for j = 0 to events - 1 do
        Tap.emit_name tap names.((j / 3) mod n).(j mod 3)
      done
    in
    let timed checkers_of_tap =
      let kernel = Kernel.create () in
      let tap = Tap.create ~record:false kernel in
      let checkers = checkers_of_tap tap in
      let t0 = Sys.time () in
      emit_all tap;
      let dt = Sys.time () -. t0 in
      assert (List.for_all Checker.passed checkers);
      Float.max dt 1e-6
    in
    let broadcast_s =
      timed (fun tap ->
          List.map
            (fun p ->
              let c = Checker.make (Backend.direct p) in
              Tap.subscribe tap (fun e -> Checker.deliver c e);
              c)
            patterns)
    in
    let hub_s =
      timed (fun tap ->
          let hub = Hub.create tap in
          List.map (fun p -> Hub.add hub p) patterns)
    in
    (n, events, broadcast_s, hub_s)
  in
  let rows = List.map bench [ 1; 4; 16; 64 ] in
  Format.printf "%-10s | %8s | %26s | %26s | %8s@." "checkers" "events"
    "broadcast direct" "hub compiled" "speedup";
  Format.printf "%-10s | %8s | %12s %13s | %12s %13s |@." "" "" "events/s"
    "steps/event" "events/s" "steps/event";
  List.iter
    (fun (n, events, broadcast_s, hub_s) ->
      let eps dt = float_of_int events /. dt in
      Format.printf "%-10d | %8d | %12.3e %13d | %12.3e %13d | %7.1fx@." n
        events (eps broadcast_s) n (eps hub_s) 1
        (eps hub_s /. eps broadcast_s))
    rows;
  (* Machine-readable artifact next to the other BENCH_* outputs. *)
  let oc = open_out "BENCH_hosted_dispatch.json" in
  let row_json (n, events, broadcast_s, hub_s) =
    let eps dt = float_of_int events /. dt in
    Printf.sprintf
      {|    { "checkers": %d, "events": %d,
      "broadcast_direct": { "seconds": %.6f, "events_per_sec": %.1f, "checker_steps_per_event": %d },
      "hub_compiled": { "seconds": %.6f, "events_per_sec": %.1f, "checker_steps_per_event": 1 },
      "speedup": %.2f }|}
      n events broadcast_s (eps broadcast_s) n hub_s (eps hub_s)
      (eps hub_s /. eps broadcast_s)
  in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"hosted_dispatch\",\n  \"workload\": \"N disjoint \
     {a_i, b_i} <<! go_i checkers, round-robin satisfying stream\",\n  %s,\n  \
     \"rows\": [\n%s\n  ]\n}\n"
    (provenance_json ~backend:"compiled")
    (String.concat ",\n" (List.map row_json rows));
  close_out oc;
  Format.printf "@.written: BENCH_hosted_dispatch.json@."

(* ---- Section 3b': whole-suite flat engine ------------------------------- *)

(* The tentpole acceptance gate: the suite-level flat engine hosted
   engine-direct must beat per-checker compiled hub hosting by >= 2x
   at 64 checkers on the dispatch workload above.  Three hostings of
   the identical stream: the routed hub over per-pattern compiled
   backends (baseline), the same hub over flat views (shared engine,
   per-checker closures), and Hub.host_flat stepping the engine's
   dispatch table directly. *)
let flat_table () =
  section
    "Flat suite engine: hub compiled vs flat views vs engine-direct dispatch";
  let open Loseq_sim in
  let open Loseq_verif in
  let target_events = 120_000 in
  let bench n =
    let suite =
      List.init n (fun i ->
          {
            Suite.label = Printf.sprintf "p%d" i;
            pattern = pat (Printf.sprintf "{a%d, b%d} <<! go%d" i i i);
            line = i + 1;
          })
    in
    let names =
      Array.init n (fun i ->
          [|
            Name.v (Printf.sprintf "a%d" i);
            Name.v (Printf.sprintf "b%d" i);
            Name.v (Printf.sprintf "go%d" i);
          |])
    in
    let events = target_events / (3 * n) * 3 * n in
    let timed attach =
      let kernel = Kernel.create () in
      let tap = Tap.create ~record:false kernel in
      let hub = attach tap in
      (* pre-bound ports: the harness should measure dispatch + step
         cost, not per-event name hashing *)
      let ports = Array.map (Array.map (Tap.port tap)) names in
      let t0 = Sys.time () in
      for j = 0 to events - 1 do
        ports.((j / 3) mod n).(j mod 3) ()
      done;
      let dt = Sys.time () -. t0 in
      (* verdict agreement across hostings: this workload satisfies
         every checker, whichever path delivered the events *)
      assert (Hub.all_passed hub);
      Float.max dt 1e-6
    in
    let hub_compiled tap =
      let hub = Hub.create tap in
      List.iter
        (fun (e : Suite.entry) -> ignore (Hub.add ~name:e.label hub e.pattern))
        suite;
      hub
    in
    let flat_views tap =
      Suite.attach_hub ~suite_backend:Backend.flat_views tap suite
    in
    let flat_engine tap = fst (Suite.attach_hub_flat tap suite) in
    (* interleaved best-of so frequency drift cancels *)
    ignore (timed hub_compiled);
    let hub_s = ref infinity
    and views_s = ref infinity
    and engine_s = ref infinity in
    for _ = 1 to 5 do
      hub_s := Float.min !hub_s (timed hub_compiled);
      views_s := Float.min !views_s (timed flat_views);
      engine_s := Float.min !engine_s (timed flat_engine)
    done;
    (n, events, !hub_s, !views_s, !engine_s)
  in
  let rows = List.map bench [ 1; 4; 16; 64 ] in
  Format.printf "%-10s | %8s | %12s | %12s | %12s | %8s@." "checkers"
    "events" "hub compiled" "flat views" "flat engine" "speedup";
  List.iter
    (fun (n, events, hub_s, views_s, engine_s) ->
      let eps dt = float_of_int events /. dt in
      Format.printf "%-10d | %8d | %12.3e | %12.3e | %12.3e | %7.2fx@." n
        events (eps hub_s) (eps views_s) (eps engine_s)
        (eps engine_s /. eps hub_s))
    rows;
  let at64 =
    List.find_map
      (fun (n, _, hub_s, _, engine_s) ->
        if n = 64 then Some (hub_s /. engine_s) else None)
      rows
  in
  (match at64 with
  | Some s ->
      Format.printf
        "@.engine-direct speedup at 64 checkers: %.2fx (acceptance bound: \
         2x)@."
        s
  | None -> ());
  let oc = open_out "BENCH_flat_table.json" in
  let row_json (n, events, hub_s, views_s, engine_s) =
    let eps dt = float_of_int events /. dt in
    Printf.sprintf
      {|    { "checkers": %d, "events": %d,
      "hub_compiled": { "seconds": %.6f, "events_per_sec": %.1f },
      "flat_views": { "seconds": %.6f, "events_per_sec": %.1f },
      "flat_engine": { "seconds": %.6f, "events_per_sec": %.1f },
      "speedup_vs_compiled": %.2f }|}
      n events hub_s (eps hub_s) views_s (eps views_s) engine_s
      (eps engine_s)
      (hub_s /. engine_s)
  in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"flat_table\",\n  \"workload\": \"N disjoint {a_i, \
     b_i} <<! go_i checkers, round-robin satisfying stream, three \
     hostings\",\n  %s,\n  \"meets_2x_at_64\": %b,\n  \"hosted_dispatch\": \
     [\n%s\n  ]\n}\n"
    (provenance_json ~backend:"flat")
    (match at64 with Some s -> s >= 2.0 | None -> false)
    (String.concat ",\n" (List.map row_json rows));
  close_out oc;
  Format.printf "@.written: BENCH_flat_table.json@."

(* ---- Section 3c: ingest throughput ------------------------------------- *)

(* The live-ingestion acceptance bound: streaming bytes through
   Codec.Decoder -> Session -> verdicts must stay within 2x of raw
   in-memory hub dispatch on the 16-checker workload above.  Three
   timings on the identical 120K-event stream: the hub alone (the
   baseline), the binary decoder alone, and the full pipeline. *)
let ingest_throughput () =
  section
    "Ingest throughput: bytes -> decoder -> session vs in-memory hub dispatch";
  let open Loseq_sim in
  let open Loseq_verif in
  let open Loseq_ingest in
  let n = 16 in
  let target_events = 120_000 in
  let patterns =
    List.init n (fun i -> pat (Printf.sprintf "{a%d, b%d} <<! go%d" i i i))
  in
  let suite =
    List.mapi
      (fun i p ->
        { Suite.label = Printf.sprintf "p%d" i; pattern = p; line = i + 1 })
      patterns
  in
  let names =
    Array.init n (fun i ->
        [|
          Name.v (Printf.sprintf "a%d" i);
          Name.v (Printf.sprintf "b%d" i);
          Name.v (Printf.sprintf "go%d" i);
        |])
  in
  let events = target_events / (3 * n) * 3 * n in
  (* Round-robin satisfying workload, time advancing one tick per
     recognition triple — the shape a virtual platform emits. *)
  let trace =
    List.init events (fun j ->
        { Trace.name = names.((j / 3) mod n).(j mod 3); time = j / 3 })
  in
  let trace_arr = Array.of_list trace in
  let bytes = Codec.encode_exn trace in
  let best f =
    (* min of three runs: these are one-shot wall-clock measurements *)
    let run () =
      let t0 = Sys.time () in
      f ();
      Float.max (Sys.time () -. t0) 1e-6
    in
    List.fold_left (fun acc _ -> Float.min acc (run ())) (run ()) [ 1; 2 ]
  in
  let hub_s =
    best (fun () ->
        let kernel = Kernel.create () in
        let tap = Tap.create ~record:false kernel in
        let hub = Hub.create tap in
        let checkers = List.map (fun p -> Hub.add hub p) patterns in
        Array.iter (fun (e : Trace.event) -> Tap.emit_name tap e.name)
          trace_arr;
        assert (List.for_all Checker.passed checkers))
  in
  let chunk = 65_536 in
  let feed_chunks decoder ~emit =
    let len = String.length bytes in
    let off = ref 0 in
    while !off < len do
      let l = min chunk (len - !off) in
      (match Codec.Decoder.feed decoder ~off:!off ~len:l bytes ~emit with
      | Ok () -> ()
      | Error msg -> failwith msg);
      off := !off + l
    done;
    match Codec.Decoder.finish decoder with
    | Ok () -> ()
    | Error msg -> failwith msg
  in
  let decode_s =
    best (fun () ->
        let decoder = Codec.Decoder.create () in
        feed_chunks decoder ~emit:ignore;
        assert (Codec.Decoder.events decoder = events))
  in
  let e2e_s =
    best (fun () ->
        let session = Session.create suite in
        let decoder = Codec.Decoder.create () in
        feed_chunks decoder ~emit:(Session.offer_force session);
        ignore (Session.finalize session);
        assert (Session.all_passed session))
  in
  let eps dt = float_of_int events /. dt in
  let ratio = eps hub_s /. eps e2e_s in
  Format.printf "%-26s | %10s | %12s | %10s@." "stage" "seconds" "events/s"
    "vs hub";
  let row label dt =
    Format.printf "%-26s | %10.4f | %12.3e | %9.2fx@." label dt (eps dt)
      (eps hub_s /. eps dt)
  in
  row "hub dispatch (baseline)" hub_s;
  row "binary decode alone" decode_s;
  row "decode + session + hub" e2e_s;
  Format.printf
    "@.stream: %d events, %d bytes (%.2f bytes/event); end-to-end is %.2fx \
     the@.baseline cost - the acceptance bound is 2x.@."
    events (String.length bytes)
    (float_of_int (String.length bytes) /. float_of_int events)
    ratio;
  let oc = open_out "BENCH_ingest.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "ingest_throughput",
  "workload": "16 disjoint {a_i, b_i} <<! go_i checkers, round-robin satisfying LSQB stream",
  %s,
  "events": %d,
  "stream_bytes": %d,
  "hub_dispatch": { "seconds": %.6f, "events_per_sec": %.1f },
  "decode_only": { "seconds": %.6f, "events_per_sec": %.1f },
  "end_to_end": { "seconds": %.6f, "events_per_sec": %.1f },
  "slowdown_vs_hub": %.3f,
  "within_2x": %b
}
|}
    (provenance_json ~backend:"compiled")
    events (String.length bytes) hub_s (eps hub_s) decode_s (eps decode_s)
    e2e_s (eps e2e_s) ratio (ratio <= 2.0);
  close_out oc;
  Format.printf "@.written: BENCH_ingest.json@."

(* ---- Section 3d: telemetry overhead ------------------------------------ *)

(* The acceptance bound for the obs layer: hosting the 16-checker
   dispatch workload with a live metrics registry must stay within 5%
   of the noop-sink baseline.  Counters are pre-registered bare int
   bumps and the dispatch-latency histogram is 1-in-64 sampled, so the
   per-event delta is a handful of increments. *)
let telemetry_overhead () =
  section
    "Telemetry overhead: hosted dispatch with noop vs live metrics registry";
  let open Loseq_sim in
  let open Loseq_verif in
  let module Obs = Loseq_obs.Metrics in
  let n = 16 in
  let target_events = 120_000 in
  let patterns =
    List.init n (fun i -> pat (Printf.sprintf "{a%d, b%d} <<! go%d" i i i))
  in
  let names =
    Array.init n (fun i ->
        [|
          Name.v (Printf.sprintf "a%d" i);
          Name.v (Printf.sprintf "b%d" i);
          Name.v (Printf.sprintf "go%d" i);
        |])
  in
  let events = target_events / (3 * n) * 3 * n in
  let timed metrics =
    let kernel = Kernel.create () in
    let tap = Tap.create ~record:false kernel in
    let hub = Hub.create ~metrics tap in
    let checkers = List.map (fun p -> Hub.add hub p) patterns in
    let t0 = Sys.time () in
    for j = 0 to events - 1 do
      Tap.emit_name tap names.((j / 3) mod n).(j mod 3)
    done;
    let dt = Sys.time () -. t0 in
    assert (List.for_all Checker.passed checkers);
    Float.max dt 1e-6
  in
  (* Interleaved best-of: noop and live alternate within each round so
     CPU-frequency drift between the two series cancels; min-of-rounds
     discards scheduler noise.  One discarded warm-up round first. *)
  let last_live = ref Obs.noop in
  let run_live () =
    let m = Obs.create () in
    last_live := m;
    timed m
  in
  ignore (timed Obs.noop);
  ignore (run_live ());
  let rounds = 9 in
  let noop_s = ref infinity and live_s = ref infinity in
  for _ = 1 to rounds do
    noop_s := Float.min !noop_s (timed Obs.noop);
    live_s := Float.min !live_s (run_live ())
  done;
  let noop_s = !noop_s and live_s = !live_s in
  (* conservation sanity on the last live run *)
  let dispatched =
    Option.value ~default:(-1)
      (Obs.read_counter !last_live ~name:"loseq_events_dispatched_total" ())
  in
  assert (dispatched = events);
  let eps dt = float_of_int events /. dt in
  let overhead_pct = (live_s -. noop_s) /. noop_s *. 100. in
  Format.printf "%-26s | %10s | %12s@." "registry" "seconds" "events/s";
  Format.printf "%-26s | %10.4f | %12.3e@." "noop sink" noop_s (eps noop_s);
  Format.printf "%-26s | %10.4f | %12.3e@." "live registry" live_s
    (eps live_s);
  Format.printf
    "@.live-vs-noop overhead: %+.2f%% on %d events (acceptance bound: 5%%)@."
    overhead_pct events;
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "telemetry_overhead",
  "workload": "16 disjoint {a_i, b_i} <<! go_i checkers, round-robin satisfying stream, hub-hosted",
  %s,
  "events": %d,
  "noop": { "seconds": %.6f, "events_per_sec": %.1f },
  "live": { "seconds": %.6f, "events_per_sec": %.1f },
  "events_dispatched_total": %d,
  "overhead_pct": %.3f,
  "within_5pct": %b
}
|}
    (provenance_json ~backend:"compiled")
    events noop_s (eps noop_s) live_s (eps live_s) dispatched overhead_pct
    (overhead_pct <= 5.0);
  close_out oc;
  Format.printf "@.written: BENCH_obs.json@."

(* The acceptance bound for the flight recorder: hosting the same
   16-checker dispatch workload with a live trace ring must stay
   within 5% of the noop-recorder baseline.  Dispatch spans are
   1-in-64 sampled and every record is four fixed-width stores into a
   pre-allocated ring, so the per-event delta is branch-predictable. *)
let trace_overhead () =
  section
    "Flight-recorder overhead: hosted dispatch with noop vs live trace ring";
  let open Loseq_sim in
  let open Loseq_verif in
  let module Tr = Loseq_obs.Trace in
  let n = 16 in
  let target_events = 120_000 in
  let patterns =
    List.init n (fun i -> pat (Printf.sprintf "{a%d, b%d} <<! go%d" i i i))
  in
  let names =
    Array.init n (fun i ->
        [|
          Name.v (Printf.sprintf "a%d" i);
          Name.v (Printf.sprintf "b%d" i);
          Name.v (Printf.sprintf "go%d" i);
        |])
  in
  let events = target_events / (3 * n) * 3 * n in
  let timed trace =
    let kernel = Kernel.create () in
    let tap = Tap.create ~record:false kernel in
    let hub = Hub.create ~trace tap in
    let checkers = List.map (fun p -> Hub.add hub p) patterns in
    let t0 = Sys.time () in
    for j = 0 to events - 1 do
      Tap.emit_name tap names.((j / 3) mod n).(j mod 3)
    done;
    let dt = Sys.time () -. t0 in
    assert (List.for_all Checker.passed checkers);
    Float.max dt 1e-6
  in
  (* Interleaved best-of, as in {!telemetry_overhead}: noop and live
     alternate within each round so frequency drift cancels. *)
  let last_live = ref Tr.noop in
  let run_live () =
    let tr = Tr.create () in
    last_live := tr;
    timed tr
  in
  ignore (timed Tr.noop);
  ignore (run_live ());
  let rounds = 9 in
  let noop_s = ref infinity and live_s = ref infinity in
  for _ = 1 to rounds do
    noop_s := Float.min !noop_s (timed Tr.noop);
    live_s := Float.min !live_s (run_live ())
  done;
  let noop_s = !noop_s and live_s = !live_s in
  (* the last live ring must have recorded the sampled spans *)
  let recorded = Tr.total !last_live in
  assert (recorded > 0);
  let eps dt = float_of_int events /. dt in
  let overhead_pct = (live_s -. noop_s) /. noop_s *. 100. in
  Format.printf "%-26s | %10s | %12s@." "recorder" "seconds" "events/s";
  Format.printf "%-26s | %10.4f | %12.3e@." "noop recorder" noop_s
    (eps noop_s);
  Format.printf "%-26s | %10.4f | %12.3e@." "live ring" live_s (eps live_s);
  Format.printf
    "@.live-vs-noop overhead: %+.2f%% on %d events (%d records, acceptance \
     bound: 5%%)@."
    overhead_pct events recorded;
  let oc = open_out "BENCH_trace.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "trace_overhead",
  "workload": "16 disjoint {a_i, b_i} <<! go_i checkers, round-robin satisfying stream, hub-hosted, flight recorder on the hub track",
  %s,
  "events": %d,
  "noop": { "seconds": %.6f, "events_per_sec": %.1f },
  "live": { "seconds": %.6f, "events_per_sec": %.1f },
  "records_emitted": %d,
  "records_dropped": %d,
  "overhead_pct": %.3f,
  "within_5pct": %b
}
|}
    (provenance_json ~backend:"compiled")
    events noop_s (eps noop_s) live_s (eps live_s) recorded
    (Tr.dropped !last_live) overhead_pct
    (overhead_pct <= 5.0);
  close_out oc;
  Format.printf "@.written: BENCH_trace.json@."

(* ---- Section 3e: race analysis ----------------------------------------- *)

(* Cost of the static commutation analysis and the suite lateness-
   robustness certificate on the case-study contract: per-entry
   pairwise commutation (reachable-state exploration + partition
   refinement + witness concretization) and the combined certificate. *)
let race_analysis () =
  section
    "Race analysis: pairwise commutation + lateness certificate (ipu.suite)";
  let open Loseq_verif in
  let open Loseq_analysis in
  let suite_path =
    List.find_opt Sys.file_exists
      [ "examples/specs/ipu.suite"; "../examples/specs/ipu.suite" ]
    |> Option.value ~default:"examples/specs/ipu.suite"
  in
  let suite =
    match Suite.load suite_path with
    | Ok s -> s
    | Error e -> failwith (Format.asprintf "%a" Suite.pp_error e)
  in
  let best f =
    let run () =
      let t0 = Sys.time () in
      let r = f () in
      (r, Float.max (Sys.time () -. t0) 1e-6)
    in
    let r, dt0 = run () in
    let _, dt1 = run () in
    (r, Float.min dt0 dt1)
  in
  Format.printf "%-26s | %8s | %6s | %10s | %8s@." "entry" "seconds" "races"
    "commuting" "decided";
  let rows =
    List.map
      (fun (e : Suite.entry) ->
        let r, dt = best (fun () -> Commute.analyze e.pattern) in
        Format.printf "%-26s | %8.4f | %6d | %10d | %8b@." e.label dt
          (List.length r.Commute.races)
          (List.length r.Commute.commuting)
          r.Commute.complete;
        (e.label, dt, r))
      suite
  in
  let labeled = List.map (fun (e : Suite.entry) -> (e.label, e.pattern)) suite in
  let cert, cert_dt = best (fun () -> Robust.certificate labeled) in
  Format.printf
    "@.suite certificate: lateness bound %s, decided %b (%.4fs)@."
    (Robust.bound_to_string cert.Robust.bound)
    cert.Robust.decided cert_dt;
  let oc = open_out "BENCH_races.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "race_analysis",
  "suite": %S,
  %s,
  "entries": [
%s  ],
  "certificate": { "seconds": %.6f, "bound": %S, "decided": %b }
}
|}
    suite_path
    (provenance_json ~backend:"analysis")
    (String.concat ""
       (List.map
          (fun (label, dt, (r : Commute.result)) ->
            Printf.sprintf
              "    { \"label\": %S, \"seconds\": %.6f, \"races\": %d, \
               \"commuting\": %d, \"decided\": %b }%s\n"
              label dt
              (List.length r.Commute.races)
              (List.length r.Commute.commuting)
              r.Commute.complete
              (if label = (match List.rev rows with (l, _, _) :: _ -> l | [] -> "")
               then ""
               else ","))
          rows))
    cert_dt
    (Robust.bound_to_string cert.Robust.bound)
    cert.Robust.decided;
  close_out oc;
  Format.printf "@.written: BENCH_races.json@."

(* ---- Section 3f: mutation gate ----------------------------------------- *)

(* Cost and outcome of the mutation quality gate on the case-study
   contract: generate every first-order mutant, kill each by static
   findings, exact product equivalence or differential replay, and
   record the per-tier attribution the CI gate consumes. *)
let mutation_gate () =
  section "Mutation analysis: three-tier kill pipeline (ipu.suite)";
  let open Loseq_analysis in
  let suite_path =
    List.find_opt Sys.file_exists
      [ "examples/specs/ipu.suite"; "../examples/specs/ipu.suite" ]
    |> Option.value ~default:"examples/specs/ipu.suite"
  in
  let suite =
    match Loseq_verif.Suite.load suite_path with
    | Ok s ->
        List.map
          (fun (e : Loseq_verif.Suite.entry) -> (e.label, e.pattern))
          s
    | Error e -> failwith (Format.asprintf "%a" Loseq_verif.Suite.pp_error e)
  in
  let t0 = Sys.time () in
  let s = Mutate.run suite in
  let dt = Sys.time () -. t0 in
  let killed =
    s.Mutate.killed_static + s.Mutate.killed_equivalence
    + s.Mutate.killed_differential
  in
  Format.printf
    "%d mutants in %.2fs: %d killed (static %d, equivalence %d, \
     differential %d), %d stillborn, %d survived@."
    s.Mutate.generated dt killed s.Mutate.killed_static
    s.Mutate.killed_equivalence s.Mutate.killed_differential
    s.Mutate.stillborn
    (List.length s.Mutate.survivors);
  Format.printf
    "kill rate %.1f%%; %d flat/compiled lockstep replays, %d divergences@."
    (100. *. s.Mutate.kill_rate)
    s.Mutate.cross_checked
    (List.length s.Mutate.divergences);
  let oc = open_out "BENCH_mutation.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "mutation_gate",
  "suite": %S,
  %s,
  "seconds": %.6f,
  "mutants": %d,
  "stillborn": %d,
  "killed": { "static": %d, "equivalence": %d, "differential": %d },
  "survivors": [%s],
  "kill_rate": %.4f,
  "meets_90pct": %b,
  "cross_checked": %d,
  "divergences": %d
}
|}
    suite_path
    (provenance_json ~backend:"analysis")
    dt s.Mutate.generated s.Mutate.stillborn s.Mutate.killed_static
    s.Mutate.killed_equivalence s.Mutate.killed_differential
    (String.concat ", "
       (List.map
          (fun (r : Mutate.result) -> Printf.sprintf "%S" r.mutant.id)
          s.Mutate.survivors))
    s.Mutate.kill_rate
    (s.Mutate.kill_rate >= 0.9)
    s.Mutate.cross_checked
    (List.length s.Mutate.divergences);
  close_out oc;
  Format.printf "@.written: BENCH_mutation.json@."

(* ---- Section 4: Bechamel micro-benchmarks ------------------------------ *)

let bechamel_benches () =
  section "Bechamel: wall-clock cost of Monitor.step (one Test per Fig. 6 row)";
  let open Bechamel in
  let workloads =
    List.map
      (fun row ->
        let p = pat row.source in
        let rng = Random.State.make [| 0xcafe |] in
        let trace =
          Array.of_list (Generate.valid ~rounds:50 ~max_run:4 rng p)
        in
        (row, p, trace))
      fig6_rows
  in
  let make_test (row, p, trace) =
    let n = Array.length trace in
    Test.make ~name:row.label
      (Staged.stage (fun () ->
           let monitor = Monitor.create p in
           for i = 0 to n - 1 do
             ignore (Monitor.step monitor trace.(i))
           done))
  in
  (* The compiled monitor's intended usage is compile-once / reset per
     run, so its setup cost is excluded (the reference monitor has no
     reset and is re-created, which is its usage). *)
  let make_compiled_test (row, p, trace) =
    let n = Array.length trace in
    let monitor = Compiled.compile p in
    Test.make ~name:(row.label ^ " [compiled]")
      (Staged.stage (fun () ->
           Compiled.reset monitor;
           for i = 0 to n - 1 do
             ignore (Compiled.step monitor trace.(i))
           done))
  in
  let tests =
    List.map make_test workloads @ List.map make_compiled_test workloads
  in
  let grouped = Test.make_grouped ~name:"fig6" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Format.printf "%-40s | %8s | %12s | %9s | %6s@." "configuration" "events"
    "ns/workload" "ns/event" "r^2";
  let print_row label events result =
    let estimate, per_event =
      match Analyze.OLS.estimates result with
      | Some [ e ] ->
          (Printf.sprintf "%.0f" e,
           Printf.sprintf "%.1f" (e /. float_of_int events))
      | Some _ | None -> ("n/a", "n/a")
    in
    let r2 =
      match Analyze.OLS.r_square result with
      | Some r -> Printf.sprintf "%.3f" r
      | None -> "n/a"
    in
    Format.printf "%-40s | %8d | %12s | %9s | %6s@." label events estimate
      per_event r2
  in
  List.iter
    (fun (row, _, trace) ->
      let events = Array.length trace in
      print_row row.label events
        (Hashtbl.find results ("fig6/" ^ row.label));
      print_row (row.label ^ " [compiled]") events
        (Hashtbl.find results ("fig6/" ^ row.label ^ " [compiled]")))
    workloads

(* ---- Section 3g: speculative verdict latency --------------------------- *)

(* The acceptance claim of the ooo engine: on a disordered stream the
   buffered path cannot report a verdict until the watermark passes it
   (a lag that grows with the lateness bound K), while the speculative
   engine reports at the deciding event's arrival and the certificate
   fast path keeps repair free on a fully certified workload.  We
   measure verdict latency in arrival indices — how many events after
   the deciding one arrives is the verdict first reported — for
   K in {2, 8, 32}. *)
let ooo_latency () =
  section "Speculative vs buffered verdict latency (lateness sweep)";
  let open Loseq_ingest in
  let open Loseq_verif in
  let module Engine = Loseq_ooo.Engine in
  let nchk = 16 and rounds = 60 in
  let half = nchk / 2 in
  let suite =
    List.init nchk (fun i ->
        {
          Suite.label = Printf.sprintf "chk%02d" i;
          pattern = pat (Printf.sprintf "{a%d, b%d} <<! go%d" i i i);
          line = i + 1;
        })
  in
  (* Checkers half..nchk-1 violate once each, staggered across the run:
     their b_i is omitted in round viol_round(i), so the deciding event
     is that round's go_i. *)
  let viol_round i =
    if i < half then -1 else (i - half) * rounds / (half + 2)
  in
  let ev t nm = { Trace.time = t; name = Name.v nm } in
  let chronological =
    let t = ref (-1) in
    let next () = incr t; !t in
    List.concat
      (List.concat
         (List.init rounds (fun r ->
              List.init nchk (fun i ->
                  let a = ev (next ()) (Printf.sprintf "a%d" i) in
                  let b =
                    if r = viol_round i then []
                    else [ ev (next ()) (Printf.sprintf "b%d" i) ]
                  in
                  let go = ev (next ()) (Printf.sprintf "go%d" i) in
                  (a :: b) @ [ go ]))))
  in
  (* The arrival stream: every premise pair swapped — b_i arrives first,
     a_i is one tick late.  The pair is certified commuting, so the
     speculative engine should absorb every swap in place. *)
  let scrambled =
    let rec swap = function
      | (a : Trace.event) :: b :: rest
        when a.Trace.time + 1 = b.Trace.time
             && (Name.to_string a.Trace.name).[0] = 'a'
             && (Name.to_string b.Trace.name).[0] = 'b' ->
          b :: a :: swap rest
      | e :: rest -> e :: swap rest
      | [] -> []
    in
    swap chronological
  in
  let scrambled_arr = Array.of_list scrambled in
  let violating = List.filter (fun i -> viol_round i >= 0) (List.init nchk Fun.id) in
  (* The deciding event of checker i is the go_i of its violating round:
     find its timestamp by counting go_i occurrences along the
     chronological trace, then look the arrival index up. *)
  let deciding_time = Hashtbl.create 8 in
  let go_count = Hashtbl.create 16 in
  List.iter
    (fun (e : Trace.event) ->
      let nm = Name.to_string e.Trace.name in
      if String.length nm > 2 && String.sub nm 0 2 = "go" then begin
        let i = int_of_string (String.sub nm 2 (String.length nm - 2)) in
        let r = Option.value ~default:0 (Hashtbl.find_opt go_count i) in
        Hashtbl.replace go_count i (r + 1);
        if r = viol_round i then Hashtbl.replace deciding_time i e.Trace.time
      end)
    chronological;
  let arrival_idx_of_time = Hashtbl.create 64 in
  Array.iteri
    (fun idx (e : Trace.event) ->
      Hashtbl.replace arrival_idx_of_time e.Trace.time idx)
    scrambled_arr;
  let idx_of_checker i =
    Hashtbl.find arrival_idx_of_time (Hashtbl.find deciding_time i)
  in
  let label_index lbl = Scanf.sscanf lbl "chk%d" Fun.id in
  let median xs =
    match List.sort compare xs with
    | [] -> 0
    | sorted -> List.nth sorted (List.length sorted / 2)
  in
  let expected = Suite.check_trace suite chronological in
  let run_k k =
    (* buffered: first report happens when the reorder buffer delivers
       the deciding event — the watermark lag. *)
    let report_idx = Hashtbl.create 8 in
    let session = Session.create ~lateness:k suite in
    let idx = ref 0 in
    Session.on_violation session (fun ~name _ ->
        let i = label_index name in
        if not (Hashtbl.mem report_idx i) then Hashtbl.replace report_idx i !idx);
    Array.iteri
      (fun j e ->
        idx := j;
        Session.offer_force session e)
      scrambled_arr;
    idx := Array.length scrambled_arr;
    let report = Session.finalize session in
    assert (List.map (fun (l, v) -> (l, Backend.passed v)) (Report.summary report) = expected);
    let buffered_lat =
      List.map (fun i -> Hashtbl.find report_idx i - idx_of_checker i) violating
    in
    (* speculative: first (speculative) report and settlement. *)
    let spec_idx = Hashtbl.create 8 and settle_idx = Hashtbl.create 8 in
    let idx = ref 0 in
    let eng =
      Engine.create
        ~notice:(fun n ->
          match n with
          | Engine.Violation { label; _ } ->
              let i = label_index label in
              if not (Hashtbl.mem spec_idx i) then Hashtbl.replace spec_idx i !idx
          | Engine.Settled { label; _ } ->
              let i = label_index label in
              if not (Hashtbl.mem settle_idx i) then
                Hashtbl.replace settle_idx i !idx
          | Engine.Retracted _ -> ())
        ~lateness:k
        (List.map (fun (e : Suite.entry) -> (e.Suite.label, e.Suite.pattern)) suite)
    in
    Array.iteri
      (fun j e ->
        idx := j;
        ignore (Engine.offer eng e))
      scrambled_arr;
    idx := Array.length scrambled_arr;
    Engine.finalize eng;
    assert (
      List.map (fun (l, v) -> (l, Backend.passed v)) (Engine.report eng)
      = expected);
    let spec_lat =
      List.map (fun i -> Hashtbl.find spec_idx i - idx_of_checker i) violating
    in
    let settle_lat =
      List.map
        (fun i ->
          match Hashtbl.find_opt settle_idx i with
          | Some s -> s - idx_of_checker i
          | None -> Array.length scrambled_arr - idx_of_checker i)
        violating
    in
    let stats = Engine.stats eng in
    ( median buffered_lat,
      median spec_lat,
      median settle_lat,
      stats )
  in
  let ks = [ 2; 8; 32 ] in
  let results = List.map (fun k -> (k, run_k k)) ks in
  Format.printf "%-10s | %18s | %20s | %16s | %12s | %9s@." "lateness"
    "buffered median" "speculative median" "settled median" "commute hits"
    "rollbacks";
  List.iter
    (fun (k, (b, s, st, stats)) ->
      Format.printf "%-10d | %18d | %20d | %16d | %12d | %9d@." k b s st
        stats.Engine.commute_hits stats.Engine.rollbacks)
    results;
  let _, (b8, s8, _, stats8) =
    List.find (fun (k, _) -> k = 8) results
  in
  Format.printf
    "@.%d checkers, %d violating, %d events; every premise pair swapped \
     (certified@.commuting): the speculative engine reports at arrival while \
     the buffered path@.waits out the watermark.@."
    nchk (List.length violating)
    (Array.length scrambled_arr);
  let oc = open_out "BENCH_ooo.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "ooo_verdict_latency",
  "workload": "%d disjoint {a_i, b_i} <<! go_i checkers, %d violating (staggered), every premise pair swapped in arrival order",
  %s,
  "events": %d,
  "late_events_per_run": %d,
  "sweep": [
%s  ],
  "acceptance": {
    "median_latency_below_buffered_at_k8": %b,
    "commute_hits_nonzero": %b,
    "zero_rollbacks": %b
  }
}
|}
    nchk (List.length violating)
    (provenance_json ~backend:"compiled")
    (Array.length scrambled_arr)
    stats8.Engine.late
    (String.concat ""
       (List.map
          (fun (k, (b, s, st, stats)) ->
            Printf.sprintf
              "    { \"lateness\": %d, \"buffered_median\": %d, \
               \"speculative_median\": %d, \"settled_median\": %d, \
               \"commute_hits\": %d, \"rollbacks\": %d, \"replayed\": %d, \
               \"dropped_late\": %d }%s\n"
              k b s st stats.Engine.commute_hits stats.Engine.rollbacks
              stats.Engine.replayed stats.Engine.dropped_late
              (if k = List.nth ks (List.length ks - 1) then "" else ","))
          results))
    (s8 < b8)
    (stats8.Engine.commute_hits > 0)
    (stats8.Engine.rollbacks = 0);
  close_out oc;
  Format.printf "@.written: BENCH_ooo.json@."

(* ---- Section 3h: shard planning ---------------------------------------- *)

(* Cost and quality of the static shard-plan analysis on the case-study
   contract: interference-graph construction (per-entry commutation +
   cross-checker products), the balance of the greedy partition at
   N = 4, and the sequential sharded replay against the unsharded
   verdicts on the recorded trace. *)
let shard_planning () =
  section "Shard planning: interference graph + balanced partition (ipu.suite)";
  let open Loseq_analysis in
  let suite_path =
    List.find_opt Sys.file_exists
      [ "examples/specs/ipu.suite"; "../examples/specs/ipu.suite" ]
    |> Option.value ~default:"examples/specs/ipu.suite"
  in
  let trace_path =
    List.find_opt Sys.file_exists
      [ "examples/traces/ipu.csv"; "../examples/traces/ipu.csv" ]
    |> Option.value ~default:"examples/traces/ipu.csv"
  in
  let suite =
    match Loseq_verif.Suite.load suite_path with
    | Ok s -> s
    | Error e -> failwith (Format.asprintf "%a" Loseq_verif.Suite.pp_error e)
  in
  let labeled = Loseq_verif.Suite.entries_of suite in
  let n_shards = 4 in
  Memo.reset ();
  let t0 = Sys.time () in
  let plan = Shard.analyze ~shards:n_shards labeled in
  let plan_dt = Sys.time () -. t0 in
  Format.printf "%a@." Shard.pp plan;
  Format.printf "planned in %.4fs (%d explorations)@." plan_dt
    (Memo.explorations_performed ());
  let tr =
    match Loseq_core.Trace_io.load_csv trace_path with
    | Ok t -> t
    | Error msg -> failwith msg
  in
  let t1 = Sys.time () in
  let unsharded = Loseq_verif.Suite.check_trace suite tr in
  let unsharded_dt = Sys.time () -. t1 in
  let t2 = Sys.time () in
  let sharded =
    Loseq_verif.Sharded.run
      ~plan:(Array.to_list plan.Shard.shards)
      suite tr
  in
  let sharded_dt = Sys.time () -. t2 in
  let agrees = sharded = unsharded in
  Format.printf
    "replay on %s: unsharded %.4fs, sharded %.4fs, verdicts agree %b@."
    trace_path unsharded_dt sharded_dt agrees;
  let balanced = plan.Shard.balance <= 1.5 in
  let oc = open_out "BENCH_shard.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "shard_planning",
  "suite": %S,
  "trace": %S,
  %s,
  "shards": %d,
  "plan_seconds": %.6f,
  "explorations": %d,
  "shard_costs": [%s],
  "per_shard": [
%s  ],
  "balance": %.4f,
  "certified": %b,
  "replay": { "unsharded_seconds": %.6f, "sharded_seconds": %.6f,
              "verdicts_agree": %b },
  "acceptance": { "balanced_1_5x": %b, "certified": %b,
                  "verdicts_agree": %b }
}
|}
    suite_path trace_path
    (provenance_json ~backend:"analysis")
    n_shards plan_dt
    (Memo.explorations_performed ())
    (String.concat ", "
       (List.map string_of_int (Array.to_list plan.Shard.shard_costs)))
    (String.concat ""
       (List.mapi
          (fun s members ->
            Printf.sprintf
              "    { \"shard\": %d, \"cost\": %d, \"checkers\": [%s] }%s\n" s
              plan.Shard.shard_costs.(s)
              (String.concat ", "
                 (List.map
                    (fun ck ->
                      Printf.sprintf "%S" (fst plan.Shard.entries.(ck)))
                    members))
              (if s = Array.length plan.Shard.shards - 1 then "" else ","))
          (Array.to_list plan.Shard.shards)))
    plan.Shard.balance plan.Shard.certified unsharded_dt sharded_dt agrees
    balanced plan.Shard.certified agrees;
  close_out oc;
  Format.printf "@.written: BENCH_shard.json@."

(* Sections are addressable from the command line so CI can run just
   one: `bench/main.exe ingest`.  No arguments runs everything. *)
let sections_by_name =
  [
    ("fig6", figure6);
    ("sweep-range", sweep_range_width);
    ("sweep-fragment", sweep_fragment_width);
    ("sweep-chain", sweep_chain_length);
    ("empirical-psl", empirical_viapsl);
    ("automata", automaton_sizes);
    ("ablation", ablation_oracle);
    ("case-study", case_study);
    ("hosted-dispatch", hosted_dispatch);
    ("flat-table", flat_table);
    ("ingest", ingest_throughput);
    ("obs", telemetry_overhead);
    ("trace", trace_overhead);
    ("races", race_analysis);
    ("mutation", mutation_gate);
    ("ooo", ooo_latency);
    ("shard", shard_planning);
    ("bechamel", bechamel_benches);
  ]

let usage () =
  Printf.eprintf "usage: bench/main.exe [SECTION]...\n\n";
  Printf.eprintf
    "Runs the named benchmark sections in order (all of them when none \
     are\ngiven).  Available sections:\n";
  List.iter (fun (nm, _) -> Printf.eprintf "  %s\n" nm) sections_by_name

let () =
  Format.printf
    "loseq benchmark harness - reproduces the evaluation of:@.  Romenska & \
     Maraninchi, \"Efficient Monitoring of Loose-Ordering@.  Properties for \
     SystemC/TLM\", DATE 2016@.";
  let chosen =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> List.map snd sections_by_name
    | requested ->
        List.map
          (fun nm ->
            match List.assoc_opt nm sections_by_name with
            | Some f -> f
            | None ->
                Printf.eprintf "unknown bench section %S\n\n" nm;
                usage ();
                exit 2)
          requested
  in
  List.iter (fun f -> f ()) chosen;
  Format.printf "@.done.@."
