(* loseq — command-line front end.

   Subcommands: check, psl, cost, gen, dfa, lint, analyze, mutate,
   suite, soc, serve, convert, feed, stats, trace, explain-verdict.
   Run `loseq_cli --help`. *)

open Loseq_core

let pattern_conv =
  let parse s =
    match Parser.pattern s with
    | Ok p -> Ok p
    | Error e -> Error (`Msg (Format.asprintf "%a" Parser.pp_error e))
  in
  Cmdliner.Arg.conv (parse, Pattern.pp)

let pattern_arg =
  let doc =
    "The loose-ordering pattern, e.g. '{a, b} << start' or \
     'start => read[100,60000] < irq within 60000'."
  in
  Cmdliner.Arg.(
    required & pos 0 (some pattern_conv) None & info [] ~docv:"PATTERN" ~doc)

(* ---- backend selection ------------------------------------------------ *)

let backend_kind_arg =
  (* The shared description lives in [Cli_doc] so check/suite/serve
     can't drift apart and the test suite can pin it. *)
  let doc = Cli_doc.backend_doc in
  Cmdliner.Arg.(
    value
    & opt
        (enum
           [
             ("direct", `Direct);
             ("compiled", `Compiled);
             ("flat", `Flat);
             ("psl", `Psl);
           ])
        `Compiled
    & info [ "backend" ] ~docv:"BACKEND" ~doc)

let factory_of = function
  | `Direct -> fun p -> Backend.direct p
  | `Compiled -> Backend.compiled
  | `Flat -> Backend.flat
  | `Psl -> Loseq_psl.Progress.backend

(* The flat backend is suite-level: given the whole suite it compiles
   one engine and hands out per-entry views.  The other kinds host per
   pattern. *)
let suite_factory_of = function
  | `Flat -> Some Backend.flat_views
  | `Direct | `Compiled | `Psl -> None

(* ---- telemetry (--stats) ---------------------------------------------- *)

module Obs = Loseq_obs.Metrics

let stats_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Collect runtime telemetry (monitor steps, dispatches, \
           verdict transitions) and print the counters to stderr when \
           done.")

(* The batch commands share one policy: a live registry when --stats
   was given, the noop sink otherwise, a human-readable dump at the
   end.  [f] gets the registry and returns the exit code. *)
let with_stats enabled f =
  let metrics = if enabled then Obs.create () else Obs.noop in
  let code = f metrics in
  if enabled then Format.eprintf "%a" Loseq_obs.Expo.pp_human metrics;
  code

(* Instrument every backend the factory builds (hosted paths thread the
   registry themselves; the batch paths wrap here). *)
let instrumented metrics factory =
  if Obs.is_live metrics then fun p -> Backend.instrument metrics (factory p)
  else factory

(* ---- check ----------------------------------------------------------- *)

let read_all ic =
  let buf = Buffer.create 65536 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  Buffer.contents buf

(* Any of the three trace formats, by content: the LSQB magic wins,
   then a comma in the first payload line means CSV, otherwise the
   whitespace name@time format. *)
let parse_sniffed data =
  match Loseq_ingest.Codec.sniff data with
  | `Binary -> Loseq_ingest.Codec.decode data
  | `Csv -> Trace_io.of_csv data
  | `Tokens -> Trace.parse data

let read_stdin_sniffed () =
  set_binary_mode_in stdin true;
  parse_sniffed (read_all stdin)

let read_trace = function
  | Some "-" | None -> read_stdin_sniffed ()
  | Some file -> (
      match open_in_bin file with
      | ic ->
          let s = read_all ic in
          close_in ic;
          parse_sniffed s
      | exception Sys_error msg -> Error msg)

let check_cmd =
  let run pattern trace_file trace_inline strict final_time backend_kind stats =
    let trace_result =
      match trace_inline with
      | Some "-" -> read_stdin_sniffed ()
      | Some s -> Trace.parse s
      | None -> read_trace trace_file
    in
    match trace_result with
    | Error msg ->
        Format.eprintf "trace error: %s@." msg;
        1
    | Ok trace -> (
        (* Strict mode must see foreign events; only the structural
           monitor supports it, whatever backend was asked for. *)
        let backend_result =
          if strict then Ok (Backend.direct ~mode:Monitor.Strict pattern)
          else
            match (factory_of backend_kind) pattern with
            | b -> Ok b
            | exception Invalid_argument msg -> Error msg
        in
        match backend_result with
        | Error msg ->
            Format.eprintf "backend error: %s@." msg;
            2
        | Ok b -> (
            with_stats stats @@ fun metrics ->
            let b =
              if Obs.is_live metrics then Backend.instrument metrics b else b
            in
            let expected = ref Name.Set.empty in
            let update () =
              match b.Backend.acceptable with
              | Some acceptable -> expected := acceptable ()
              | None -> ()
            in
            update ();
            let rec feed = function
              | [] -> ()
              | e :: rest -> (
                  match b.Backend.step e with
                  | Backend.Running | Backend.Satisfied ->
                      update ();
                      feed rest
                  | Backend.Violated _ -> ())
            in
            feed trace;
            let final_time =
              match final_time with
              | Some ft -> ft
              | None -> Trace.end_time trace
            in
            match b.Backend.finalize ~now:final_time with
            | Backend.Running ->
                Format.printf "PASS (recognition in progress, no violation)@.";
                0
            | Backend.Satisfied ->
                Format.printf "PASS (property satisfied)@.";
                0
            | Backend.Violated v ->
                Format.printf "FAIL: %a@." Diag.pp_violation v;
                if not (Name.Set.is_empty !expected) then
                  Format.printf "the monitor would have accepted: %a@."
                    Name.pp_set !expected;
                1))
  in
  let open Cmdliner in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "file" ] ~docv:"FILE"
          ~doc:
            "Trace file — tokens ('name' or 'name@time', whitespace \
             separated), CSV, or LSQB binary, sniffed by content; \
             $(b,-) or absent reads stdin the same way.")
  in
  let trace_inline =
    Arg.(
      value
      & opt (some string) None
      & info [ "t"; "trace" ] ~docv:"TRACE"
          ~doc:"Inline trace; $(b,-) reads stdin (sniffed).")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Reject non-alphabet events.")
  in
  let final_time =
    Arg.(
      value
      & opt (some int) None
      & info [ "final-time" ] ~docv:"T"
          ~doc:"Observation end time for deadline checks.")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Run a monitor backend on a trace")
    Term.(
      const run $ pattern_arg $ trace_file $ trace_inline $ strict
      $ final_time $ backend_kind_arg $ stats_arg)

(* ---- psl ------------------------------------------------------------- *)

let psl_cmd =
  let run pattern size_only buchi =
    let size = Loseq_psl.Translate.formula_size pattern in
    Format.printf "formula size: %d nodes (+ lexer D = %d)@." size
      (Loseq_psl.Translate.delta_cost pattern);
    if not size_only then begin
      match Loseq_psl.Translate.to_psl pattern with
      | f ->
          Format.printf "%a@." Loseq_psl.Psl.pp f;
          if buchi then
            Format.printf "Buchi automaton: %a@." Loseq_psl.Buchi.pp_stats
              (Loseq_psl.Buchi.of_ltl f)
      | exception Invalid_argument msg -> Format.printf "(not materialized: %s)@." msg
    end;
    0
  in
  let open Cmdliner in
  let size_only =
    Arg.(value & flag & info [ "size-only" ] ~doc:"Only report the size.")
  in
  let buchi =
    Arg.(
      value & flag
      & info [ "buchi" ] ~doc:"Also translate to a Buchi automaton.")
  in
  Cmd.v
    (Cmd.info "psl" ~doc:"Translate a pattern into PSL (Section 5)")
    Term.(const run $ pattern_arg $ size_only $ buchi)

(* ---- cost ------------------------------------------------------------ *)

let fig6_rows =
  [
    ("(n << i, true)", "n <<! i", (80, 192), ("238+D", "896+D"));
    ("(n[100,60K] << i, true)", "n[100,60000] <<! i", (80, 192),
     ("4e11+D", "2e12+D"));
    ("(({n1..n4},/\\) << i, false)", "{n1, n2, n3, n4} << i", (230, 1132),
     ("1785+D", "6720+D"));
    ("(({n1..n5},/\\) << i, false)", "{n1, n2, n3, n4, n5} << i", (280, 1568),
     ("2142+D", "8064+D"));
    ("(n1 => n2<n3<n4, T)", "n1 => n2 < n3 < n4 within 1000", (296, 1051),
     ("1428+D", "5376+D"));
    ("(n1 => n2[100,60K]<n3<n4, T)",
     "n1 => n2[100,60000] < n3 < n4 within 1000", (296, 1051),
     ("4e11+D", "2e12+D"));
  ]

let print_cost_line p =
  let drct = Cost.drct p in
  let via = Loseq_psl.Cost.via_psl p in
  Format.printf
    "  Drct:   %d ops/event, %d bits@.  ViaPSL: %d+D ops/event, %d+D bits \
     (|f| = %d, D = %d)@."
    drct.Cost.ops_per_event drct.Cost.space_bits via.Loseq_psl.Cost.ops_per_event
    via.Loseq_psl.Cost.space_bits via.Loseq_psl.Cost.formula_size
    via.Loseq_psl.Cost.delta

let cost_cmd =
  let run patterns =
    (match patterns with
    | [] ->
        Format.printf
          "Figure 6 configurations (paper values in parentheses):@.";
        List.iter
          (fun (label, src, (ops, bits), (via_ops, via_bits)) ->
            let p = Parser.pattern_exn src in
            Format.printf "@.%s   [%s]@." label src;
            Format.printf "  paper:  Drct %d ops, %d bits; ViaPSL %s ops, %s \
                           bits@." ops bits via_ops via_bits;
            print_cost_line p)
          fig6_rows
    | ps ->
        List.iter
          (fun p ->
            Format.printf "%a@." Pattern.pp p;
            print_cost_line p)
          ps);
    0
  in
  let open Cmdliner in
  let patterns =
    Arg.(value & pos_all pattern_conv [] & info [] ~docv:"PATTERN")
  in
  Cmd.v
    (Cmd.info "cost"
       ~doc:"Print Drct/ViaPSL monitor costs (Fig. 6 by default)")
    Term.(const run $ patterns)

(* ---- gen ------------------------------------------------------------- *)

let gen_cmd =
  let run pattern rounds seed violating =
    let rng = Random.State.make [| seed |] in
    if violating then (
      match Generate.violating rng pattern with
      | Some tr ->
          Format.printf "%s@." (Trace.to_string tr);
          0
      | None ->
          Format.eprintf "no violating mutation found@.";
          1)
    else begin
      Format.printf "%s@."
        (Trace.to_string (Generate.valid ~rounds rng pattern));
      0
    end
  in
  let open Cmdliner in
  let rounds =
    Arg.(
      value & opt int 3
      & info [ "rounds" ] ~docv:"N" ~doc:"Recognition rounds to generate.")
  in
  let seed = Arg.(value & opt int 0x5eed & info [ "seed" ] ~docv:"SEED") in
  let violating =
    Arg.(
      value & flag
      & info [ "violating" ] ~doc:"Generate a violating trace instead.")
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:"Generate random traces from a pattern (stimuli generation)")
    Term.(const run $ pattern_arg $ rounds $ seed $ violating)

(* ---- lint / analyze --------------------------------------------------- *)

let format_arg =
  let format_conv =
    Cmdliner.Arg.conv
      ( (fun s ->
          match Finding.format_of_string s with
          | Ok f -> Ok f
          | Error e -> Error (`Msg e)),
        fun ppf f ->
          Format.pp_print_string ppf
            (match f with
            | Finding.Text -> "text"
            | Finding.Json -> "json"
            | Finding.Sarif -> "sarif") )
  in
  Cmdliner.Arg.(
    value
    & opt format_conv Finding.Text
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:"Output format: $(b,text), $(b,json) or $(b,sarif).")

let suppress_arg =
  Cmdliner.Arg.(
    value & opt_all string []
    & info [ "suppress" ] ~docv:"CODE"
        ~doc:
          "Drop findings with this code (repeatable).  Suppressed \
           findings affect neither the output nor the exit code.")

let suites_arg =
  Cmdliner.Arg.(
    value & opt_all file []
    & info [ "suite" ] ~docv:"FILE"
        ~doc:"Analyze every entry of a property suite file (repeatable).")

let patterns_arg =
  Cmdliner.Arg.(value & pos_all pattern_conv [] & info [] ~docv:"PATTERN")

(* Inline patterns and suite entries, unified as analyzer items. *)
let gather_items suites patterns =
  let rec load acc = function
    | [] -> Ok (List.rev acc)
    | file :: rest -> (
        match Loseq_verif.Suite.load file with
        | Error e ->
            Error
              (Format.asprintf "%s: %a" file Loseq_verif.Suite.pp_error e)
        | Ok entries ->
            let items =
              List.map
                (fun (e : Loseq_verif.Suite.entry) ->
                  Loseq_analysis.Analysis.item ~file ~line:e.line e.label
                    e.pattern)
                entries
            in
            load (List.rev_append items acc) rest)
  in
  match load [] suites with
  | Error _ as e -> e
  | Ok suite_items ->
      let pattern_items =
        List.mapi
          (fun i p ->
            Loseq_analysis.Analysis.item
              (Printf.sprintf "pattern-%d" (i + 1))
              p)
          patterns
      in
      Ok (suite_items @ pattern_items)

(* Render + exit-code policy: 0 clean, 1 warnings, 2 errors (3 is
   reserved for usage and I/O failures). *)
let render_findings format suppressed fs =
  let fs = Finding.suppress suppressed (Finding.order fs) in
  (match (format, fs) with
  | Finding.Text, [] -> Format.printf "no findings@."
  | _ ->
      Finding.render ~tool_name:"loseq" ~tool_version:Version.current
        ~rules:Loseq_analysis.Analysis.rules format Format.std_formatter fs);
  Finding.exit_code fs

let lint_cmd =
  let run patterns suites format suppressed =
    if patterns = [] && suites = [] then begin
      Format.eprintf "nothing to lint: give PATTERN arguments or --suite FILE@.";
      3
    end
    else
      match gather_items suites patterns with
      | Error msg ->
          Format.eprintf "%s@." msg;
          3
      | Ok items ->
          let fs =
            List.concat_map
              (fun (it : Loseq_analysis.Analysis.item) ->
                List.map
                  (Finding.with_origin ~subject:it.label ?file:it.file
                     ?line:it.line)
                  (Lint.lint it.pattern))
              items
          in
          render_findings format suppressed fs
  in
  let open Cmdliner in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Flag suspicious (but legal) patterns - fast syntactic checks; \
          see $(b,analyze) for the semantic decision procedures")
    Term.(const run $ patterns_arg $ suites_arg $ format_arg $ suppress_arg)

(* ---- analyze --------------------------------------------------------- *)

(* Robustness findings carry the entry label as subject; give them the
   suite file/line the analyzer items know about. *)
let attach_origins (items : Loseq_analysis.Analysis.item list) fs =
  let origin label =
    List.find_opt
      (fun (it : Loseq_analysis.Analysis.item) -> String.equal it.label label)
      items
  in
  List.map
    (fun (f : Finding.t) ->
      match Option.bind f.subject origin with
      | Some it -> Finding.with_origin ?file:it.file ?line:it.line f
      | None -> f)
    fs

let pp_certificate ppf (cert : Loseq_analysis.Robust.certificate) =
  List.iter
    (fun (e : Loseq_analysis.Robust.entry) ->
      Format.fprintf ppf "%-24s lateness bound %-4s%s@." e.label
        (Loseq_analysis.Robust.bound_to_string e.bound)
        (if e.decided then ""
         else " (undecided within budget: conservative)"))
    cert.entries;
  Format.fprintf ppf "suite certified lateness bound: %s@."
    (Loseq_analysis.Robust.bound_to_string cert.bound)

(* Every readable file of a directory, parsed as a trace (tokens, CSV
   or LSQB binary, sniffed).  Sorted by name so runs are stable. *)
(* A workload directory may hold files the batch analyses cannot use —
   e.g. arrival-order captures for the speculative path, which are
   deliberately non-chronological.  Skip those with a warning rather
   than refusing the whole directory. *)
let read_traces_dir dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error msg
  | files ->
      Array.sort compare files;
      Array.fold_left
        (fun ts f ->
          let path = Filename.concat dir f in
          if Sys.is_directory path then ts
          else
            match read_trace (Some path) with
            | Ok t -> t :: ts
            | Error msg ->
                Format.eprintf "warning: skipping %s: %s@." path msg;
                ts)
        [] files
      |> List.rev |> Result.ok

let traces_dir_arg =
  Cmdliner.Arg.(
    value
    & opt (some dir) None
    & info [ "traces" ] ~docv:"DIR"
        ~doc:
          "Read every file of $(docv) as a trace (tokens, CSV or LSQB \
           binary, sniffed by content) and add them to the workload.")

(* --shard-plan: plan, render, optionally verify sharded-vs-unsharded
   verdicts over the --traces workload.  Verification replays every
   trace through [Verif.Sharded] (one hub per shard over the sliced
   slab) and the unsharded [Suite.check_trace]; a mismatch on a
   certified plan is a [shard-divergence] error finding. *)
let shard_divergences plan suite traces =
  List.concat
    (List.mapi
       (fun k trace ->
         let sharded =
           Loseq_verif.Sharded.run
             ~plan:(Array.to_list plan.Loseq_analysis.Shard.shards)
             suite trace
         in
         let unsharded =
           Loseq_verif.Suite.check_trace ~suite_backend:Backend.flat_views
             suite trace
         in
         List.filter_map
           (fun ((label, sv), (label', uv)) ->
             assert (String.equal label label');
             if sv = uv then None
             else
               Some
                 (Finding.v ~subject:label Finding.Error "shard-divergence"
                    "trace #%d: sharded execution says %s, unsharded says \
                     %s — the plan's independence certificate is unsound"
                    (k + 1)
                    (if sv then "PASS" else "FAIL")
                    (if uv then "PASS" else "FAIL")))
           (List.combine sharded unsharded))
       traces)

let analyze_cmd =
  let run positionals suites format suppressed suppress_file explain races
      certify coverage shard_plan profile plan_out traces_dir budget =
    match explain with
    | Some "" ->
        (* no code: list every registered finding code *)
        List.iter
          (fun (e : Loseq_analysis.Explain.entry) ->
            Format.printf "%-22s %-8s %s@." e.code
              (Format.asprintf "%a" Finding.pp_severity e.severity)
              e.title)
          Loseq_analysis.Explain.all;
        0
    | Some code -> (
        match Loseq_analysis.Explain.find code with
        | Some entry ->
            Format.printf "%a@." Loseq_analysis.Explain.pp entry;
            0
        | None ->
            Format.eprintf "unknown finding code %S; known codes:@." code;
            List.iter
              (fun (e : Loseq_analysis.Explain.entry) ->
                Format.eprintf "  %s@." e.code)
              Loseq_analysis.Explain.all;
            3)
    | None -> (
        let suppressed =
          match suppress_file with
          | None -> Ok suppressed
          | Some path -> (
              match Finding.load_suppress_file path with
              | Ok codes -> Ok (suppressed @ codes)
              | Error e -> Error (Printf.sprintf "--suppress-file: %s" e))
        in
        (* a positional naming an existing file is a suite file, anything
           else must parse as an inline pattern *)
        let files, inline = List.partition Sys.file_exists positionals in
        let patterns =
          List.fold_left
            (fun acc s ->
              match acc with
              | Error _ -> acc
              | Ok ps -> (
                  match Parser.pattern s with
                  | Ok p -> Ok (p :: ps)
                  | Error e ->
                      Error
                        (Format.asprintf "%s: %a" s Parser.pp_error e)))
            (Ok []) inline
        in
        match (suppressed, patterns) with
        | Error msg, _ | _, Error msg ->
            Format.eprintf "%s@." msg;
            3
        | Ok suppressed, Ok patterns -> (
            let patterns = List.rev patterns in
            let suites = suites @ files in
            if patterns = [] && suites = [] then begin
              Format.eprintf
                "nothing to analyze: give PATTERN arguments or --suite \
                 FILE@.";
              3
            end
            else
              match gather_items suites patterns with
              | Error msg ->
                  Format.eprintf "%s@." msg;
                  3
              | Ok items -> (
                  let labeled =
                    List.map
                      (fun (it : Loseq_analysis.Analysis.item) ->
                        (it.label, it.pattern))
                      items
                  in
                  match shard_plan with
                  | Some n when n < 1 ->
                      Format.eprintf "--shard-plan: N must be >= 1@.";
                      3
                  | Some n -> (
                      let inputs =
                        (* --profile accepts either a loseq-profile/1
                           artifact (measured per-checker load from a
                           live run) or a raw trace to re-derive the
                           alphabet frequencies from. *)
                        let profile =
                          match profile with
                          | None -> Ok (None, [])
                          | Some path -> (
                              match open_in_bin path with
                              | exception Sys_error msg -> Error msg
                              | ic -> (
                                  let data = read_all ic in
                                  close_in ic;
                                  match Json.of_string data with
                                  | Ok json ->
                                      Result.map
                                        (fun measured -> (None, measured))
                                        (Loseq_analysis.Shard.profile_of_json
                                           json)
                                  | Error _ ->
                                      Result.map
                                        (fun tr -> (Some tr, []))
                                        (parse_sniffed data)))
                        in
                        let traces =
                          match traces_dir with
                          | None -> Ok []
                          | Some dir -> read_traces_dir dir
                        in
                        match (profile, traces) with
                        | Error msg, _ ->
                            Error (Printf.sprintf "--profile: %s" msg)
                        | _, Error msg ->
                            Error (Printf.sprintf "--traces: %s" msg)
                        | Ok p, Ok ts -> Ok (p, ts)
                      in
                      match inputs with
                      | Error msg ->
                          Format.eprintf "%s@." msg;
                          3
                      | Ok ((profile, measured), traces) ->
                          let plan =
                            Loseq_analysis.Shard.analyze ~budget ?profile
                              ~measured ~shards:n labeled
                          in
                          if format = Finding.Text then
                            Format.printf "@[<v>%a@]@."
                              Loseq_analysis.Shard.pp plan;
                          (match plan_out with
                          | None -> ()
                          | Some path ->
                              let oc = open_out path in
                              output_string oc
                                (Json.to_string
                                   (Loseq_analysis.Shard.to_json plan));
                              output_char oc '\n';
                              close_out oc);
                          let suite =
                            List.map
                              (fun (label, pattern) ->
                                { Loseq_verif.Suite.label; pattern; line = 0 })
                              labeled
                          in
                          render_findings format suppressed
                            (attach_origins items
                               (Loseq_analysis.Shard.findings plan
                               @ shard_divergences plan suite traces)))
                  | None ->
                  if coverage then begin
                    match
                      match traces_dir with
                      | None -> Ok []
                      | Some dir -> read_traces_dir dir
                    with
                    | Error msg ->
                        Format.eprintf "--traces: %s@." msg;
                        3
                    | Ok traces ->
                        let reports =
                          Loseq_analysis.Cover.suite_report ~budget labeled
                            traces
                        in
                        if format = Finding.Text then
                          List.iter
                            (fun r ->
                              Format.printf "%a@." Loseq_analysis.Cover.pp r)
                            reports;
                        render_findings format suppressed
                          (attach_origins items
                             (Loseq_analysis.Cover.findings reports))
                  end
                  else
                  match certify with
                  | Some k when k < -1 ->
                      Format.eprintf "--certify-lateness: K must be >= 0@.";
                      3
                  | Some k ->
                      let cert =
                        Loseq_analysis.Robust.certificate ~budget labeled
                      in
                      if format = Finding.Text then
                        Format.printf "%a" pp_certificate cert;
                      if k < 0 then 0
                      else
                        render_findings format suppressed
                          (attach_origins items
                             (Loseq_analysis.Robust.findings ~lateness:k cert))
                  | None ->
                      if races then
                        render_findings format suppressed
                          (attach_origins items
                             (Loseq_analysis.Robust.race_findings ~budget
                                labeled))
                      else
                        render_findings format suppressed
                          (Loseq_analysis.Analysis.analyze ~budget items))))
  in
  let open Cmdliner in
  let explain =
    Arg.(
      value
      & opt ~vopt:(Some "") (some string) None
      & info [ "explain" ] ~docv:"CODE"
          ~doc:
            "Print the rationale behind a finding code (with a live \
             witness on a minimal example) instead of analyzing; \
             without $(docv), list every registered code.")
  in
  let coverage =
    Arg.(
      value & flag
      & info [ "coverage" ]
          ~doc:
            "Reachable-coverage report: score the --traces set against \
             each entry's reachable abstract states and transitions \
             (the analyzer's own reachable set, not an estimate); \
             uncovered reachable states are $(b,coverage-gap) findings \
             with a BFS-minimal witness trace.")
  in
  let budget =
    Arg.(
      value & opt int 200_000
      & info [ "budget" ] ~docv:"STATES"
          ~doc:
            "Abstract-state exploration budget per pattern or pair; \
             beyond it unreachability-based checks are skipped.")
  in
  let positionals =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATTERN|SUITE"
          ~doc:
            "Inline patterns, or paths of suite files (a positional \
             naming an existing file is loaded like --suite).")
  in
  let suppress_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "suppress-file" ] ~docv:"PATH"
          ~doc:
            "Read suppressed finding codes from a file (one code per \
             line, '#' starts a comment); merged with --suppress.")
  in
  let races =
    Arg.(
      value & flag
      & info [ "races" ]
          ~doc:
            "Commutation analysis only: report racy name pairs with \
             twin-trace witnesses ($(b,race-pair)) and \
             timestamp-fragile deadlines ($(b,jitter-fragile)).")
  in
  let certify =
    Arg.(
      value
      & opt ~vopt:(Some (-1)) (some int) None
      & info [ "certify-lateness" ] ~docv:"K"
          ~doc:
            "Print the suite's certified lateness-robustness bound (the \
             maximal reorder window that provably cannot flip any \
             verdict).  With a value $(docv), additionally emit a \
             $(b,reorder-unsafe) error finding for every entry whose \
             bound is below $(docv).")
  in
  let shard_plan =
    Arg.(
      value
      & opt ~vopt:(Some 4) (some int) None
      & info [ "shard-plan" ] ~docv:"N"
          ~doc:
            "Partition the suite into $(docv) shards (default 4): build \
             the checker-interference graph (shared names, \
             non-commuting cross-checker pairs, deadline coupling), \
             balance a static cost model over the shards and print the \
             certified plan.  Coupling constraints are \
             $(b,shard-coupled) findings; a lopsided plan is \
             $(b,shard-imbalance).  With --traces, every trace is \
             additionally replayed sharded and unsharded — a verdict \
             mismatch is a $(b,shard-divergence) error.")
  in
  let profile =
    Arg.(
      value
      & opt (some file) None
      & info [ "profile" ] ~docv:"TRACE|PROFILE"
          ~doc:
            "Weight the shard-plan cost model with measured load.  A \
             loseq-profile/1 JSON artifact (from $(b,loseq serve \
             --profile-out) or $(b,loseq trace)) charges each checker \
             its measured alphabet-event count; a raw trace (tokens, \
             CSV or LSQB, sniffed) charges the number of profile \
             events in its alphabet.")
  in
  let plan_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan-out" ] ~docv:"FILE"
          ~doc:"Write the shard plan's JSON artifact to $(docv).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Semantic analysis of patterns and suites: satisfiability, \
          vacuity, deadline feasibility, subsumption and conflicts, \
          commutation races and reorder robustness, by exhaustive \
          exploration of the monitor automata"
       ~man:
         [
           `S Cmdliner.Manpage.s_exit_status;
           `P
             "0 on no findings, 1 if the worst finding is a warning, 2 \
              if any error-severity finding remains after suppression, \
              3 on usage or I/O errors.";
         ])
    Term.(
      const run $ positionals $ suites_arg $ format_arg $ suppress_arg
      $ suppress_file $ explain $ races $ certify $ coverage $ shard_plan
      $ profile $ plan_out $ traces_dir_arg $ budget)

(* ---- mutate ----------------------------------------------------------- *)

let mutate_cmd =
  let module Mutate = Loseq_analysis.Mutate in
  let run file traces_dir budget seed kill_floor mutant list_only weak format
      suppressed =
    match Loseq_verif.Suite.load file with
    | Error e ->
        Format.eprintf "%a@." Loseq_verif.Suite.pp_error e;
        3
    | Ok suite -> (
        let entries =
          List.map
            (fun (e : Loseq_verif.Suite.entry) -> (e.label, e.pattern))
            suite
        in
        if list_only then begin
          List.iter
            (fun (m : Mutate.mutant) ->
              Format.printf "%-46s %s@." m.id m.description)
            (List.concat_map (Mutate.mutants_of ~seed) entries);
          0
        end
        else
          match
            match traces_dir with
            | None -> Ok []
            | Some dir -> read_traces_dir dir
          with
          | Error msg ->
              Format.eprintf "--traces: %s@." msg;
              3
          | Ok traces ->
              let s =
                Mutate.run ~budget ~seed ~traces ~weak ?only:mutant entries
              in
              if s.results = [] && mutant <> None then begin
                Format.eprintf "unknown mutant id %S (try --list)@."
                  (Option.get mutant);
                3
              end
              else begin
                if format = Finding.Text then begin
                  List.iter
                    (fun (r : Mutate.result) ->
                      let outcome, detail =
                        match r.outcome with
                        | Mutate.Stillborn -> ("stillborn", "")
                        | Mutate.Killed k ->
                            ("killed:" ^ Mutate.tier_name k.tier, "")
                        | Mutate.Survived { undecided } ->
                            ( "SURVIVED",
                              if undecided then " (product budget exhausted)"
                              else "" )
                      in
                      Format.printf "%-46s %s%s@." r.mutant.id outcome detail)
                    s.results;
                  let killed =
                    s.killed_static + s.killed_equivalence
                    + s.killed_differential
                  in
                  Format.printf
                    "%d mutants: %d killed (static %d, equivalence %d, \
                     differential %d), %d stillborn (pruned), %d survived@."
                    s.generated killed s.killed_static s.killed_equivalence
                    s.killed_differential s.stillborn
                    (List.length s.survivors);
                  Format.printf
                    "kill rate %.1f%% of %d non-stillborn; %d \
                     flat/compiled lockstep replays, %d divergences@."
                    (100. *. s.kill_rate)
                    (s.generated - s.stillborn)
                    s.cross_checked
                    (List.length s.divergences)
                end;
                let fs =
                  Mutate.findings ?floor:kill_floor ~suite:file s
                in
                if format = Finding.Text && fs = [] then 0
                else render_findings format suppressed fs
              end)
  in
  let open Cmdliner in
  let file =
    Arg.(
      required
      & pos 0 (some Arg.file) None
      & info [] ~docv:"SUITE"
          ~doc:"Property suite file ('name: pattern' per line).")
  in
  let budget =
    Arg.(
      value & opt int 200_000
      & info [ "budget" ] ~docv:"STATES"
          ~doc:
            "Exact-product exploration budget per mutant for the \
             equivalence tier; a mutant that exhausts it can be \
             neither killed nor pruned there.")
  in
  let seed =
    Arg.(
      value & opt int 0x5eed
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Seed for table-operator sampling and generated workload \
             traces; mutant ids are stable per seed.")
  in
  let kill_floor =
    Arg.(
      value
      & opt (some float) None
      & info [ "kill-floor" ] ~docv:"PCT"
          ~doc:
            "Fail (exit 2, $(b,mutation-kill-floor)) when the kill \
             rate over non-stillborn mutants drops below $(docv) \
             percent.")
  in
  let mutant =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutant" ] ~docv:"ID"
          ~doc:
            "Run a single mutant (the replay command attached to every \
             $(b,mutant-survived) finding).")
  in
  let list_only =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:"List the generated mutants without running any tier.")
  in
  let weak =
    Arg.(
      value & flag
      & info [ "weak" ]
          ~doc:
            "Replace the boundary-probing differential workload by a \
             single generated trace — demonstrates how trace quality \
             moves the kill rate.")
  in
  Cmd.v
    (Cmd.info "mutate"
       ~doc:
         "Mutation analysis of a property suite: seed first-order \
          faults into every compiled monitor and kill each mutant \
          statically, by exact product equivalence, or by differential \
          replay (which doubles as flat-vs-compiled cross-validation)"
       ~man:
         [
           `S Cmdliner.Manpage.s_exit_status;
           `P
             "0 when every non-stillborn mutant was killed (and no \
              floor breached), 1 when mutants survived, 2 when the \
              kill-rate floor was breached or the engines diverged, 3 \
              on usage or I/O errors.";
         ])
    Term.(
      const run $ file $ traces_dir_arg $ budget $ seed $ kill_floor
      $ mutant $ list_only $ weak $ format_arg $ suppress_arg)

(* ---- suite ----------------------------------------------------------- *)

let suite_cmd =
  let run file trace_file trace_inline final_time backend_kind stats =
    match Loseq_verif.Suite.load file with
    | Error e ->
        Format.eprintf "%a@." Loseq_verif.Suite.pp_error e;
        2
    | Ok suite -> (
        let trace_result =
          match trace_inline with
          | Some "-" -> read_stdin_sniffed ()
          | Some s -> Trace.parse s
          | None -> read_trace trace_file
        in
        match trace_result with
        | Error msg ->
            Format.eprintf "trace error: %s@." msg;
            2
        | Ok trace -> (
            with_stats stats @@ fun metrics ->
            match
              Loseq_verif.Suite.check_trace ~metrics
                ~backend:(factory_of backend_kind)
                ?suite_backend:(suite_factory_of backend_kind)
                ?final_time suite trace
            with
            | results ->
                List.iter
                  (fun (label, passed) ->
                    Format.printf "%-40s %s@." label
                      (if passed then "PASS" else "FAIL"))
                  results;
                if List.for_all snd results then 0 else 1
            | exception Invalid_argument msg ->
                Format.eprintf "backend error: %s@." msg;
                2))
  in
  let open Cmdliner in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"SUITE"
          ~doc:"Property suite file ('name: pattern' per line).")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "file" ] ~docv:"FILE"
          ~doc:
            "Trace file (tokens, CSV or LSQB binary, sniffed); $(b,-) \
             or absent reads stdin.")
  in
  let trace_inline =
    Arg.(
      value
      & opt (some string) None
      & info [ "t"; "trace" ] ~docv:"TRACE"
          ~doc:"Inline trace; $(b,-) reads stdin (sniffed).")
  in
  let final_time =
    Arg.(
      value
      & opt (some int) None
      & info [ "final-time" ] ~docv:"T")
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"Check a property-suite file against a trace")
    Term.(
      const run $ file $ trace_file $ trace_inline $ final_time
      $ backend_kind_arg $ stats_arg)

(* ---- serve / convert / feed / stats (live ingestion) ------------------ *)

let parse_addr flag s =
  match String.rindex_opt s ':' with
  | None ->
      Error (Printf.sprintf "%s %S: expected HOST:PORT" flag s)
  | Some i -> (
      let host = String.sub s 0 i
      and port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 ->
          Ok ((if host = "" then "127.0.0.1" else host), p)
      | _ -> Error (Printf.sprintf "%s %S: invalid port" flag s))

let serve_cmd =
  let run file socket lateness window checkpoint checkpoint_every resume
      strict_reorder ooo final_time backend_kind metrics_addr stats_interval
      trace_out profile_out latency_sample_rate =
    let addr_result =
      match metrics_addr with
      | None -> Ok None
      | Some s -> Result.map Option.some (parse_addr "--metrics-addr" s)
    in
    match (Loseq_verif.Suite.load file, addr_result) with
    | Error e, _ ->
        Format.eprintf "%a@." Loseq_verif.Suite.pp_error e;
        2
    | _, Error msg ->
        Format.eprintf "%s@." msg;
        2
    | Ok suite, Ok metrics_addr ->
        let input =
          match socket with Some path -> `Socket path | None -> `Stdin
        in
        Loseq_ingest.Server.serve ?metrics_addr ~stats_interval
          ~backend:(factory_of backend_kind)
          ?suite_backend:(suite_factory_of backend_kind)
          ~lateness ~window ?checkpoint ~checkpoint_every ~resume
          ~strict_reorder ~ooo ?final_time ?trace_out ?profile_out
          ?latency_sample_rate ~input suite
  in
  let open Cmdliner in
  let file =
    Arg.(
      required
      & opt (some Arg.file) None
      & info [ "suite" ] ~docv:"FILE"
          ~doc:"Property suite file to host ('name: pattern' per line).")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket (one connection) instead of \
             reading stdin.")
  in
  let lateness =
    Arg.(
      value & opt int 0
      & info [ "lateness" ] ~docv:"K"
          ~doc:
            "Absorb events up to $(docv) ticks out of order; later ones \
             are dropped (reported in the summary).")
  in
  let window =
    Arg.(
      value & opt int 1024
      & info [ "window" ] ~docv:"N"
          ~doc:
            "Reorder/backpressure window: at most $(docv) events pending \
             release.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:"Checkpoint file (written on SIGTERM and periodically).")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Also checkpoint every $(docv) accepted events.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Restore from --checkpoint if it exists; the producer must \
             replay the stream from the start (already-counted events \
             are skipped).")
  in
  let strict_reorder =
    Arg.(
      value & flag
      & info [ "strict-reorder" ]
          ~doc:
            "Refuse to start (exit 2) when --lateness exceeds the \
             suite's certified lateness-robustness bound (see \
             $(b,loseq analyze --certify-lateness)): beyond it, \
             reorderings the buffer silently absorbs could flip a \
             verdict.  Without this flag the mismatch is only reported \
             in the reorder-certificate record.")
  in
  let ooo =
    Arg.(value & flag & info [ "ooo" ] ~doc:Cli_doc.ooo_doc)
  in
  let final_time =
    Arg.(
      value
      & opt (some int) None
      & info [ "final-time" ] ~docv:"T"
          ~doc:"Observation end time for the final deadline check.")
  in
  let metrics_addr =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-addr" ] ~docv:"HOST:PORT"
          ~doc:
            "Expose runtime telemetry over HTTP at $(docv): \
             $(b,GET /metrics) answers Prometheus text format, \
             $(b,GET /stats.json) the same registry as JSON.  The \
             endpoint is multiplexed into the serve loop and stays up \
             after end of stream until SIGTERM.")
  in
  let stats_interval =
    Arg.(
      value & opt int 0
      & info [ "stats-interval" ] ~docv:"N"
          ~doc:
            "Emit a {\"type\":\"stats\",...} NDJSON record every \
             $(docv) accepted events (0 disables).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record a flight-recorder trace of the run (dispatch spans, \
             deadline firings, admission/backpressure/checkpoint spans, \
             speculation records under --ooo) and write it to $(docv) on \
             end of stream or interruption: NDJSON when $(docv) ends in \
             .ndjson, Chrome trace-event JSON (Perfetto-loadable) \
             otherwise.")
  in
  let profile_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-out" ] ~docv:"FILE"
          ~doc:
            "Write a loseq-profile/1 artifact on exit: measured \
             per-checker event counts and the dispatch-latency \
             histogram.  $(b,loseq analyze --shard-plan N --profile \
             FILE) consumes it as measured load.")
  in
  let latency_sample_rate =
    Arg.(
      value
      & opt (some int) None
      & info [ "latency-sample-rate" ] ~docv:"N"
          ~doc:
            "Sample one dispatch in $(docv) for the latency histogram \
             and trace spans (default 64; rounded up to a power of \
             two).  1 samples every dispatch.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Host a property suite as a live monitor: stream events in \
          (stdin or Unix socket, binary or CSV), NDJSON records out"
       ~man:
         [
           `S Cmdliner.Manpage.s_description;
           `P Cli_doc.serve_modes_doc;
           `S Cmdliner.Manpage.s_exit_status;
           `P
             "0 when every property passed (or the server was \
              interrupted by SIGTERM after writing its checkpoint), 1 \
              when some property failed, 2 on input or setup errors.";
         ])
    Term.(
      const run $ file $ socket $ lateness $ window $ checkpoint
      $ checkpoint_every $ resume $ strict_reorder $ ooo $ final_time
      $ backend_kind_arg $ metrics_addr $ stats_interval $ trace_out
      $ profile_out $ latency_sample_rate)

let convert_cmd =
  let run input output to_format =
    let data_result =
      match input with
      | Some "-" | None ->
          set_binary_mode_in stdin true;
          Ok (read_all stdin)
      | Some file -> (
          match open_in_bin file with
          | ic ->
              let s = read_all ic in
              close_in ic;
              Ok s
          | exception Sys_error msg -> Error msg)
    in
    match data_result with
    | Error msg ->
        Format.eprintf "convert: %s@." msg;
        2
    | Ok data -> (
        match parse_sniffed data with
        | Error msg ->
            Format.eprintf "convert: %s@." msg;
            2
        | Ok trace -> (
            let to_format =
              match to_format with
              | Some f -> f
              | None -> (
                  (* No explicit target: flip between the two wire-able
                     formats (binary in -> CSV out, text in -> binary). *)
                  match Loseq_ingest.Codec.sniff data with
                  | `Binary -> `Csv
                  | `Csv | `Tokens -> `Binary)
            in
            let rendered =
              match to_format with
              | `Csv -> Ok (Trace_io.to_csv trace)
              | `Tokens -> Ok (Trace.to_string trace ^ "\n")
              | `Binary -> Loseq_ingest.Codec.encode trace
            in
            match rendered with
            | Error msg ->
                Format.eprintf "convert: %s@." msg;
                2
            | Ok rendered -> (
                match output with
                | Some path when path <> "-" -> (
                    match open_out_bin path with
                    | oc ->
                        output_string oc rendered;
                        close_out oc;
                        0
                    | exception Sys_error msg ->
                        Format.eprintf "convert: %s@." msg;
                        2)
                | _ ->
                    set_binary_mode_out stdout true;
                    print_string rendered;
                    0)))
  in
  let open Cmdliner in
  let input =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Input trace (tokens, CSV or LSQB binary, sniffed); \
                $(b,-) or absent reads stdin.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Output file; $(b,-) or absent writes stdout.")
  in
  let to_format =
    Arg.(
      value
      & opt
          (some (enum [ ("csv", `Csv); ("binary", `Binary); ("tokens", `Tokens) ]))
          None
      & info [ "to" ] ~docv:"FORMAT"
          ~doc:
            "Target format: $(b,csv), $(b,binary) or $(b,tokens).  \
             Default: binary input becomes CSV, text input becomes \
             binary.")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Convert traces between CSV, token text and LSQB binary")
    Term.(const run $ input $ output $ to_format)

let feed_cmd =
  let run socket input =
    let ic_result =
      match input with
      | Some "-" | None ->
          set_binary_mode_in stdin true;
          Ok (stdin, false)
      | Some file -> (
          match open_in_bin file with
          | ic -> Ok (ic, true)
          | exception Sys_error msg -> Error msg)
    in
    match ic_result with
    | Error msg ->
        Format.eprintf "feed: %s@." msg;
        2
    | Ok (ic, close) -> (
        let result = Loseq_ingest.Server.feed ~path:socket ic in
        if close then close_in ic;
        match result with
        | Ok _ -> 0
        | Error msg ->
            Format.eprintf "feed: %s@." msg;
            2)
  in
  let open Cmdliner in
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket of a running $(b,loseq serve).")
  in
  let input =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Bytes to send; $(b,-) or absent is stdin.")
  in
  Cmd.v
    (Cmd.info "feed"
       ~doc:
         "Copy a trace byte stream into a serve socket (a socat-free \
          producer for shell pipelines)")
    Term.(const run $ socket $ input)

(* ---- stats ------------------------------------------------------------ *)

(* A curl-free client for the serve metrics endpoint: one GET with
   [Connection: close], read to EOF, split status from body. *)
let http_get ~host ~port ~path =
  let addr_result =
    match Unix.inet_addr_of_string host with
    | a -> Ok a
    | exception Failure _ -> (
        match Unix.gethostbyname host with
        | exception Not_found -> Error (Printf.sprintf "unknown host %S" host)
        | { Unix.h_addr_list = [||]; _ } ->
            Error (Printf.sprintf "unknown host %S" host)
        | h -> Ok h.Unix.h_addr_list.(0))
  in
  match addr_result with
  | Error _ as e -> e
  | Ok addr -> (
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
      @@ fun () ->
      match
        Unix.connect sock (Unix.ADDR_INET (addr, port));
        let request =
          Printf.sprintf
            "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n" path
            host
        in
        let rec send off =
          if off < String.length request then
            send
              (off
              + Unix.write_substring sock request off
                  (String.length request - off))
        in
        send 0;
        let buf = Bytes.create 65536 and data = Buffer.create 4096 in
        let rec recv () =
          match Unix.read sock buf 0 (Bytes.length buf) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes data buf 0 n;
              recv ()
        in
        recv ();
        Buffer.contents data
      with
      | exception Unix.Unix_error (e, fn, _) ->
          Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
      | response -> (
          let header_end =
            let n = String.length response in
            let rec at i =
              if i + 4 > n then None
              else if String.sub response i 4 = "\r\n\r\n" then Some i
              else at (i + 1)
            in
            at 0
          in
          match header_end with
          | None -> Error "malformed HTTP response"
          | Some i -> (
              let status_line =
                match String.index_opt response '\r' with
                | Some j -> String.sub response 0 j
                | None -> response
              in
              let body =
                String.sub response (i + 4) (String.length response - i - 4)
              in
              match String.split_on_char ' ' status_line with
              | _ :: "200" :: _ -> Ok body
              | _ -> Error (Printf.sprintf "server answered %S" status_line))))

let pp_stats_body ppf json =
  let metrics =
    Option.value ~default:[]
      (Option.bind (Json.member "metrics" json) Json.to_list_opt)
  in
  List.iter
    (fun m ->
      let str k = Option.bind (Json.member k m) Json.to_string_opt in
      let int k =
        match Json.member k m with Some (Json.Int n) -> Some n | _ -> None
      in
      let name = Option.value ~default:"?" (str "name") in
      let labels =
        match Json.member "labels" m with
        | Some (Json.Obj ((_ :: _) as kvs)) ->
            "{"
            ^ String.concat ","
                (List.map
                   (fun (k, v) ->
                     Printf.sprintf "%s=%s" k
                       (Option.value ~default:"?" (Json.to_string_opt v)))
                   kvs)
            ^ "}"
        | _ -> ""
      in
      let cell = name ^ labels in
      match str "type" with
      | Some "histogram" ->
          let count = Option.value ~default:0 (int "count") in
          Format.fprintf ppf "%-44s count=%d sum=%d@." cell count
            (Option.value ~default:0 (int "sum"));
          (* quantiles from the cumulative buckets the payload already
             carries — same estimator as the server-side --stats dump *)
          let buckets =
            Option.value ~default:[]
              (Option.bind (Json.member "buckets" m) Json.to_list_opt)
            |> List.filter_map (fun b ->
                   match (Json.member "le" b, Json.member "count" b) with
                   | Some (Json.Int le), Some (Json.Int c) -> Some (le, c)
                   | _ -> None)
            |> Array.of_list
          in
          if count > 0 && Array.length buckets > 0 then
            Format.fprintf ppf "  %-42s p50 %.1f  p90 %.1f  p99 %.1f@."
              "quantiles"
              (Loseq_obs.Profile.quantile ~count ~buckets 0.5)
              (Loseq_obs.Profile.quantile ~count ~buckets 0.9)
              (Loseq_obs.Profile.quantile ~count ~buckets 0.99)
      | _ ->
          Format.fprintf ppf "%-44s %d@." cell
            (Option.value ~default:0 (int "value")))
    metrics

let stats_cmd =
  let run addr prometheus raw =
    match parse_addr "--addr" addr with
    | Error msg ->
        Format.eprintf "stats: %s@." msg;
        2
    | Ok (host, port) -> (
        let path = if prometheus then "/metrics" else "/stats.json" in
        match http_get ~host ~port ~path with
        | Error msg ->
            Format.eprintf "stats: %s@." msg;
            2
        | Ok body -> (
            if prometheus || raw then begin
              print_string body;
              if body = "" || body.[String.length body - 1] <> '\n' then
                print_newline ();
              0
            end
            else
              match Json.of_string body with
              | Error msg ->
                  Format.eprintf "stats: bad /stats.json payload: %s@." msg;
                  2
              | Ok json ->
                  Format.printf "%a" pp_stats_body json;
                  0))
  in
  let open Cmdliner in
  let addr =
    Arg.(
      required
      & opt (some string) None
      & info [ "addr" ] ~docv:"HOST:PORT"
          ~doc:
            "Metrics endpoint of a running $(b,loseq serve \
             --metrics-addr).")
  in
  let prometheus =
    Arg.(
      value & flag
      & info [ "prometheus" ]
          ~doc:"Fetch and print the raw Prometheus text (/metrics).")
  in
  let raw =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the raw /stats.json payload instead of a table.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Query a live serve's metrics endpoint and print the counters \
          (a curl-free /stats.json client)")
    Term.(const run $ addr $ prometheus $ raw)

(* ---- trace ------------------------------------------------------------ *)

(* Offline flight recording: replay a recorded trace through a hosted
   session with the recorder live, then export the ring — the whole
   serve-side instrumentation without a server. *)

let trace_cmd =
  let module Tr = Loseq_obs.Trace in
  let run file trace_file out profile_out lateness backend_kind
      latency_sample_rate final_time =
    match (Loseq_verif.Suite.load file, read_trace trace_file) with
    | Error e, _ ->
        Format.eprintf "%a@." Loseq_verif.Suite.pp_error e;
        2
    | _, Error msg ->
        Format.eprintf "trace error: %s@." msg;
        2
    | Ok suite, Ok events -> (
        let metrics = Obs.create () in
        let tr = Tr.create () in
        match
          Loseq_ingest.Session.create ~metrics ~trace:tr
            ~backend:(factory_of backend_kind)
            ?suite_backend:(suite_factory_of backend_kind)
            ?latency_sample_rate ~lateness suite
        with
        | exception Wellformed.Ill_formed (p, errs) ->
            Format.eprintf "ill-formed pattern %a:@ %a@." Pattern.pp p
              (Format.pp_print_list Wellformed.pp_error)
              errs;
            2
        | exception Invalid_argument msg ->
            Format.eprintf "trace: %s@." msg;
            2
        | session -> (
            let prov =
              Loseq_verif.Provenance.create
                (Loseq_verif.Hub.tap (Loseq_ingest.Session.hub session))
                suite
            in
            List.iter (Loseq_ingest.Session.offer_force session) events;
            let report =
              Loseq_ingest.Session.finalize ?final_time session
            in
            let ndjson = Filename.check_suffix out ".ndjson" in
            let write path data =
              let oc = open_out path in
              output_string oc data;
              close_out oc
            in
            match
              write out (if ndjson then Tr.to_ndjson tr else Tr.to_chrome tr)
            with
            | exception Sys_error msg ->
                Format.eprintf "trace: %s@." msg;
                2
            | () -> (
                Format.printf
                  "%s: %d records (%d dropped) over %d events, %s@." out
                  (Tr.length tr) (Tr.dropped tr) (List.length events)
                  (if ndjson then "NDJSON" else "Chrome trace-event JSON");
                match profile_out with
                | None ->
                    if Loseq_verif.Report.all_passed report then 0 else 1
                | Some path -> (
                    match
                      write path
                        (Loseq_obs.Profile.render ~metrics
                           ~checkers:(Loseq_verif.Provenance.seen prov)
                           ())
                    with
                    | exception Sys_error msg ->
                        Format.eprintf "trace: %s@." msg;
                        2
                    | () ->
                        Format.printf "%s: loseq-profile/1 (%d checkers)@."
                          path (List.length suite);
                        if Loseq_verif.Report.all_passed report then 0
                        else 1))))
  in
  let open Cmdliner in
  let file =
    Arg.(
      required
      & opt (some Arg.file) None
      & info [ "suite" ] ~docv:"FILE"
          ~doc:"Property suite to host during the replay.")
  in
  let trace_file =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:
            "Recorded trace (tokens, CSV or LSQB, sniffed); $(b,-) or \
             absent reads stdin.")
  in
  let out =
    Arg.(
      value
      & opt string "loseq-trace.json"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Flight-recorder export: NDJSON when $(docv) ends in \
             .ndjson, Chrome trace-event JSON otherwise.")
  in
  let profile_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-out" ] ~docv:"FILE"
          ~doc:
            "Also write a loseq-profile/1 artifact (measured \
             per-checker load + dispatch-latency histogram) for \
             $(b,loseq analyze --shard-plan --profile).")
  in
  let lateness =
    Arg.(
      value & opt int 0
      & info [ "lateness" ] ~docv:"K"
          ~doc:"Reorder window for the hosting session (default 0).")
  in
  let latency_sample_rate =
    Arg.(
      value
      & opt (some int) None
      & info [ "latency-sample-rate" ] ~docv:"N"
          ~doc:
            "Sample one dispatch in $(docv) (default 64; 1 samples \
             every dispatch).")
  in
  let final_time =
    Arg.(
      value
      & opt (some int) None
      & info [ "final-time" ] ~docv:"T"
          ~doc:"Observation end time for the final deadline check.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay a recorded trace through a hosted suite with the \
          flight recorder live and export the ring (plus an optional \
          measured profile)"
       ~man:
         [
           `S Cmdliner.Manpage.s_exit_status;
           `P
             "0 when every property passed, 1 when some failed, 2 on \
              input or setup errors.";
         ])
    Term.(
      const run $ file $ trace_file $ out $ profile_out $ lateness
      $ backend_kind_arg $ latency_sample_rate $ final_time)

(* ---- explain-verdict --------------------------------------------------- *)

(* Standalone verdict provenance: reproduce a Fail from a recorded
   trace, minimize its causal chain, and prove the chain self-contained
   by replaying it on both the compiled and the flat backend. *)

let explain_verdict_cmd =
  let module Prov = Loseq_verif.Provenance in
  let run file property trace_file final_time format =
    match (Loseq_verif.Suite.load file, read_trace trace_file) with
    | Error e, _ ->
        Format.eprintf "%a@." Loseq_verif.Suite.pp_error e;
        2
    | _, Error msg ->
        Format.eprintf "trace error: %s@." msg;
        2
    | Ok suite, Ok events -> (
        match
          List.find_opt
            (fun (e : Loseq_verif.Suite.entry) -> e.label = property)
            suite
        with
        | None ->
            Format.eprintf "explain-verdict: no property %S in %s@."
              property file;
            2
        | Some entry -> (
            match Loseq_ingest.Session.create suite with
            | exception Wellformed.Ill_formed (p, errs) ->
                Format.eprintf "ill-formed pattern %a:@ %a@." Pattern.pp p
                  (Format.pp_print_list Wellformed.pp_error)
                  errs;
                2
            | session ->
                let prov =
                  Prov.create
                    (Loseq_verif.Hub.tap (Loseq_ingest.Session.hub session))
                    suite
                in
                Loseq_ingest.Session.on_violation session (fun ~name v ->
                    Prov.note_violation prov ~label:name v);
                List.iter (Loseq_ingest.Session.offer_force session) events;
                let report =
                  Loseq_ingest.Session.finalize ?final_time session
                in
                let passed =
                  match
                    List.assoc_opt property
                      (Loseq_verif.Report.summary report)
                  with
                  | Some v -> Backend.passed v
                  | None -> true
                in
                if passed then begin
                  Format.eprintf
                    "explain-verdict: %S passed on this trace — nothing \
                     to explain@."
                    property;
                  1
                end
                else begin
                  let ft = Loseq_ingest.Session.now session in
                  let chain =
                    Prov.minimize ~final_time:ft ~label:property
                      entry.pattern
                      (Prov.captured prov property)
                  in
                  (* the chain must be self-contained: replaying it
                     alone reproduces the Fail on both hosting kinds *)
                  let compiled_fails =
                    not
                      (Prov.replay ~final_time:ft ~label:property
                         entry.pattern chain)
                  in
                  let flat_fails =
                    not
                      (Prov.replay ~backend:Backend.flat ~final_time:ft
                         ~label:property entry.pattern chain)
                  in
                  let json =
                    Json.Obj
                      [
                        ("property", Json.String property);
                        ("final_time", Json.Int ft);
                        ( "provenance",
                          Prov.chain_json
                            ?violation:(Prov.violation_of prov property)
                            chain );
                        ( "replays",
                          Json.Obj
                            [
                              ("compiled_fails", Json.Bool compiled_fails);
                              ("flat_fails", Json.Bool flat_fails);
                            ] );
                      ]
                  in
                  (match format with
                  | `Json -> Format.printf "%a@." Json.pp json
                  | `Text ->
                      Format.printf "%s: Fail at %d — %d-event causal \
                                     chain@."
                        property ft (List.length chain);
                      List.iter
                        (fun (l : Prov.link) ->
                          Format.printf "  %6d  %s@." l.time
                            (Name.to_string l.name))
                        chain;
                      (match Prov.violation_of prov property with
                      | Some v ->
                          Format.printf "  %s@."
                            (Diag.violation_to_string v)
                      | None -> ());
                      Format.printf
                        "replay: compiled %s, flat %s@."
                        (if compiled_fails then "Fail" else "PASS")
                        (if flat_fails then "Fail" else "PASS"));
                  if compiled_fails && flat_fails then 0 else 2
                end))
  in
  let open Cmdliner in
  let file =
    Arg.(
      required
      & opt (some Arg.file) None
      & info [ "suite" ] ~docv:"FILE" ~doc:"Property suite file.")
  in
  let property =
    Arg.(
      required
      & opt (some string) None
      & info [ "property" ] ~docv:"LABEL"
          ~doc:"The suite entry whose Fail to explain.")
  in
  let trace_file =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:
            "Recorded trace (tokens, CSV or LSQB, sniffed); $(b,-) or \
             absent reads stdin.")
  in
  let final_time =
    Arg.(
      value
      & opt (some int) None
      & info [ "final-time" ] ~docv:"T"
          ~doc:"Observation end time for the final deadline check.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: $(b,text) or $(b,json).")
  in
  Cmd.v
    (Cmd.info "explain-verdict"
       ~doc:
         "Reproduce a property's Fail from a recorded trace and print \
          the minimal causal chain behind it (delta-debugged verdict \
          provenance, replay-checked on the compiled and flat backends)"
       ~man:
         [
           `S Cmdliner.Manpage.s_exit_status;
           `P
             "0 when the property fails and its minimized chain \
              reproduces the Fail on both backends, 1 when the \
              property passes on the trace, 2 on input errors or a \
              replay disagreement.";
         ])
    Term.(
      const run $ file $ property $ trace_file $ final_time $ format)

(* ---- dfa ------------------------------------------------------------- *)

let dfa_cmd =
  let run pattern dot minimize_flag max_states =
    match Automaton.of_pattern ~max_states pattern with
    | automaton ->
        let automaton =
          if minimize_flag then Automaton.minimize automaton else automaton
        in
        Format.printf "%a@." Automaton.pp_stats automaton;
        if dot then print_string (Automaton.to_dot automaton);
        0
    | exception Automaton.Too_many_states n ->
        Format.eprintf
          "state space exceeds %d states (wide ranges make the explicit            product explode; that is what the modular monitors avoid)@."
          n;
        1
  in
  let open Cmdliner in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Print Graphviz source.")
  in
  let minimize_flag =
    Arg.(value & flag & info [ "minimize" ] ~doc:"Minimize first.")
  in
  let max_states =
    Arg.(value & opt int 4096 & info [ "max-states" ] ~docv:"N")
  in
  Cmd.v
    (Cmd.info "dfa"
       ~doc:"Materialize the monitor's explicit state machine")
    Term.(const run $ pattern_arg $ dot $ minimize_flag $ max_states)

(* ---- soc ------------------------------------------------------------- *)

let soc_cmd =
  let run presses bug slow_ipu seed verbose vcd csv backend_kind stats =
    let open Loseq_platform in
    let cpu_bug =
      match bug with
      | Some "start-first" -> Some Cpu.Start_before_config
      | Some "skip-size" -> Some Cpu.Skip_gl_size
      | Some "double-addr" -> Some Cpu.Double_gl_addr
      | Some other ->
          Format.eprintf "unknown bug %S@." other;
          exit 2
      | None -> None
    in
    let config =
      { Soc.default_config with presses; cpu_bug; slow_ipu; seed }
    in
    with_stats stats @@ fun metrics ->
    let soc = Soc.create ~config () in
    let report =
      match
        Soc.attach_standard_checkers
          ~backend:(instrumented metrics (factory_of backend_kind))
          soc
      with
      | report -> report
      | exception Invalid_argument msg ->
          (* e.g. the PSL backend rejecting read_img[100,60000]. *)
          Format.eprintf "backend error: %s@." msg;
          exit 2
    in
    Soc.run soc;
    Loseq_verif.Report.finalize report;
    if verbose then
      Format.printf "trace (%d events):@.%s@.@."
        (Loseq_verif.Tap.count (Soc.tap soc))
        (Trace.to_string (Loseq_verif.Tap.trace (Soc.tap soc)));
    (match vcd with
    | Some path ->
        Loseq_verif.Vcd.write ~path (Loseq_verif.Tap.trace (Soc.tap soc));
        Format.printf "waveform dumped to %s@." path
    | None -> ());
    (match csv with
    | Some path ->
        Trace_io.save_csv ~path (Loseq_verif.Tap.trace (Soc.tap soc));
        Format.printf "trace dumped to %s@." path
    | None -> ());
    Loseq_verif.Report.print report;
    Format.printf
      "recognitions: %d, matches: %d, lock opened %d time(s)@."
      (Ipu.recognitions (Soc.ipu soc))
      (Cpu.matches_seen (Soc.cpu soc))
      (Lock.open_count (Soc.lock soc));
    if Loseq_verif.Report.all_passed report then 0 else 1
  in
  let open Cmdliner in
  let presses =
    Arg.(value & opt int 3 & info [ "presses" ] ~docv:"N" ~doc:"Button presses.")
  in
  let bug =
    Arg.(
      value
      & opt (some string) None
      & info [ "bug" ] ~docv:"BUG"
          ~doc:"Inject a firmware bug: start-first, skip-size, double-addr.")
  in
  let slow_ipu =
    Arg.(value & flag & info [ "slow-ipu" ] ~doc:"Miss the recognition deadline.")
  in
  let seed = Arg.(value & opt int 0xface & info [ "seed" ] ~docv:"SEED") in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Dump the observed trace.")
  in
  let vcd =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~docv:"FILE" ~doc:"Write the trace as a VCD waveform.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:
            "Write the observed trace as CSV (replayable through \
             $(b,loseq serve) or $(b,loseq convert)).")
  in
  Cmd.v
    (Cmd.info "soc"
       ~doc:"Simulate the access-control platform with monitors attached")
    Term.(
      const run $ presses $ bug $ slow_ipu $ seed $ verbose $ vcd $ csv
      $ backend_kind_arg $ stats_arg)

let () =
  let open Cmdliner in
  let info =
    Cmd.info "loseq_cli" ~version:Version.current
      ~doc:"Loose-ordering property monitoring for SystemC/TLM-style models"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ check_cmd; psl_cmd; cost_cmd; gen_cmd; dfa_cmd; lint_cmd;
            analyze_cmd; mutate_cmd; suite_cmd; soc_cmd; serve_cmd;
            convert_cmd; feed_cmd; stats_cmd; trace_cmd;
            explain_verdict_cmd ]))
