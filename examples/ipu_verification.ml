(* The paper's case study end to end: simulate the access-control
   virtual platform (Fig. 2) with the Section-3 properties attached to
   the IPU interface, first with correct firmware, then with an injected
   ordering bug.

   Run with: dune exec examples/ipu_verification.exe *)

open Loseq_core
open Loseq_platform
open Loseq_verif

(* The checkers are hosted on an alphabet-routed hub; [backend] picks
   the monitor implementation behind each one (the CLI equivalent is
   `loseq_cli soc --backend compiled`).  Compiled is the production
   default; direct is the paper's structural construction with the
   richest diagnostics. *)
let scenario ?(backend = Backend.compiled) title config =
  Format.printf "@.===== %s =====@." title;
  let soc = Soc.create ~config () in
  let hub = Soc.standard_hub ~backend soc in
  (match Hub.checkers hub with
  | c :: _ ->
      Format.printf "(monitor backend: %s)@." (Checker.backend c).Backend.label
  | [] -> ());
  let report = Hub.report hub in
  (* Violations are reported live, with full diagnostics. *)
  Soc.run soc;
  Report.finalize report;
  Format.printf
    "simulated activity: %d interface events, %d recognitions, %d matches, \
     door opened %d time(s)@."
    (Tap.count (Soc.tap soc))
    (Ipu.recognitions (Soc.ipu soc))
    (Cpu.matches_seen (Soc.cpu soc))
    (Lock.open_count (Soc.lock soc));
  Report.print report

let () =
  Format.printf "Access-control device: %s@."
    (String.concat ", "
       [ "GPIO"; "SEN"; "IPU"; "LCDC"; "INTC"; "TMR1"; "TMR2"; "MEM"; "LOCK";
         "Bus"; "CPU" ]);

  (* Correct firmware: the CPU writes the IPU configuration registers in
     a different (random) order on every recognition — the point of
     loose-ordering properties is that all these orders are correct. *)
  scenario "correct firmware (3 button presses)" Soc.default_config;

  (* The same scenario on the structural (Drct) backend: identical
     verdicts, richer per-fragment coverage. *)
  scenario
    ~backend:(fun p -> Backend.direct p)
    "correct firmware, structural backend" Soc.default_config;

  (* Buggy firmware: recognition started before the gallery size was
     configured.  A classic driver race — caught by the antecedent
     monitor at the `start` event. *)
  scenario "bug: start before configuration complete"
    { Soc.default_config with
      cpu_bug = Some Cpu.Skip_gl_size;
      presses = 1 };

  (* Slow hardware: the recognition pipeline misses the paper's duration
     bound T; caught by the timed-implication monitor when the deadline
     elapses, without waiting for the (late) interrupt. *)
  scenario "bug: recognition misses its deadline"
    { Soc.default_config with slow_ipu = true; presses = 1 }
