(* Specification refactoring with explicit monitor automata.

   Loose-ordering patterns are code too: they get refactored, and a
   refactoring should not silently change the language.  The explicit
   automaton extraction decides language equivalence of patterns, shows
   how big the monitor's implicit product state space really is, and
   exports Graphviz for review.

   Run with: dune exec examples/spec_refactoring.exe *)

open Loseq_core

let check_refactoring label before after =
  let a = Automaton.of_pattern (Parser.pattern_exn before) in
  let b = Automaton.of_pattern (Parser.pattern_exn after) in
  Format.printf "%-44s %s@." label
    (if Automaton.equivalent a b then "EQUIVALENT" else "DIFFERENT")

let () =
  Format.printf "--- refactorings that must preserve the language ---@.";
  (* Reordering ranges inside a fragment is cosmetic. *)
  check_refactoring "reorder fragment members"
    "{set_a, set_b, set_c} << go" "{set_c, set_a, set_b} << go";
  (* [1,1] bounds are the default. *)
  check_refactoring "explicit [1,1] bounds"
    "{set_a[1,1], set_b} << go" "{set_a, set_b} << go";

  Format.printf "@.--- changes that look innocent but are not ---@.";
  (* Splitting a conjunctive fragment into a chain imposes an order. *)
  check_refactoring "fragment -> chain" "{set_a, set_b} << go"
    "set_a < set_b << go";
  (* A disjunction accepts strictly more (and fewer) behaviours. *)
  check_refactoring "conjunction -> disjunction" "{set_a, set_b} << go"
    "{set_a | set_b} << go";
  (* Non-repeated and repeated antecedents differ after the first go. *)
  check_refactoring "one-shot -> repeated" "set_a << go" "set_a <<! go";

  (* State-space inspection: what the modular monitors never build. *)
  Format.printf "@.--- implicit state spaces, materialized ---@.";
  List.iter
    (fun src ->
      let p = Parser.pattern_exn src in
      match Automaton.of_pattern ~max_states:20000 p with
      | a ->
          let m = Automaton.minimize a in
          Format.printf "%-44s %a (minimal: %d)@." src Automaton.pp_stats a
            m.Automaton.num_states
      | exception Automaton.Too_many_states n ->
          Format.printf "%-44s more than %d states - not materializable@."
            src n)
    [
      "{set_a, set_b} << go";
      "{n1, n2} < {n3[2,8] | n4} < n5 << i";
      "read[1,500] <<! done";
      "read[1,100000] <<! done";
    ];
  Format.printf
    "@.(the last line is the paper's point: the Drct monitor for it is 192 \
     bits)@.";

  (* And a picture for code review. *)
  let dot =
    Automaton.to_dot
      (Automaton.minimize
         (Automaton.of_pattern (Parser.pattern_exn "{set_a, set_b} << go")))
  in
  Format.printf "@.Graphviz of the minimized {set_a, set_b} << go monitor:@.%s"
    dot
