(* Pattern-driven random testing — the paper's "future work" feature.

   The same pattern is used three ways: to generate valid stimuli, to
   generate mutated (violating) stimuli, and as the runtime oracle that
   classifies them.  The declarative semantics cross-checks every
   verdict, and coverage shows how well the stimuli exercised the
   recognizers.

   Run with: dune exec examples/random_testing.exe *)

open Loseq_core

let property =
  Parser.pattern_exn "{cfg_a, cfg_b[1,3]} < {mode_x | mode_y} <<! commit"

let () =
  Format.printf "property under test: %a@.@." Pattern.pp property;
  let rng = Random.State.make [| 2024 |] in
  let coverage = Loseq_verif.Coverage.create property in

  (* 1. Valid stimuli: every generated trace must be accepted. *)
  let valid_runs = 200 in
  let accepted = ref 0 in
  for _ = 1 to valid_runs do
    let trace = Generate.valid ~rounds:(1 + Random.State.int rng 4) rng property in
    let monitor = Monitor.create property in
    List.iter
      (fun e ->
        ignore (Monitor.step monitor e);
        Loseq_verif.Coverage.observe_event coverage e;
        Loseq_verif.Coverage.observe_states coverage
          (Monitor.fragment_states monitor))
      trace;
    (match Monitor.verdict monitor with
    | Monitor.Running | Monitor.Satisfied -> incr accepted
    | Monitor.Violated v ->
        Format.printf "generator bug?! %a on %s@." Diag.pp_violation v
          (Trace.to_string trace));
    assert (Semantics.holds property trace)
  done;
  Format.printf "valid stimuli:     %d/%d accepted@." !accepted valid_runs;

  (* 2. Mutated stimuli: each is guaranteed (by construction + oracle
        check) to violate the pattern; the monitor must catch them all. *)
  let violating_runs = 200 in
  let caught = ref 0 in
  let reasons = Hashtbl.create 8 in
  for _ = 1 to violating_runs do
    match Generate.violating rng property with
    | None -> ()
    | Some trace -> (
        match Monitor.run property trace with
        | Monitor.Violated v ->
            incr caught;
            let key = Format.asprintf "%a" Diag.pp_reason v.Diag.reason in
            Hashtbl.replace reasons key
              (1 + Option.value ~default:0 (Hashtbl.find_opt reasons key))
        | Monitor.Running | Monitor.Satisfied ->
            Format.printf "MISSED violation on %s@." (Trace.to_string trace))
  done;
  Format.printf "mutated stimuli:   %d/%d caught@.@." !caught violating_runs;
  Format.printf "violation kinds seen:@.";
  Hashtbl.iter (fun k c -> Format.printf "  %3d x %s@." c k) reasons;

  (* 3. Coverage of the recognizer state space by the valid stimuli. *)
  Format.printf "@.%a@." Loseq_verif.Coverage.pp coverage
