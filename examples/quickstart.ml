(* Quickstart: specify a loose-ordering property, monitor traces.

   The property is Example 2 of the paper: before starting face
   recognition, the environment must have provided the image address,
   the gallery address and the gallery size — in any order.

   Run with: dune exec examples/quickstart.exe *)

open Loseq_core

let () =
  (* 1. Write the property.  Either with the combinators... *)
  let property =
    Pattern.antecedent
      [
        Pattern.fragment
          [
            Pattern.range (Name.v "set_imgAddr");
            Pattern.range (Name.v "set_glAddr");
            Pattern.range (Name.v "set_glSize");
          ];
      ]
      ~trigger:(Name.v "start")
  in
  (* ...or with the concrete syntax — they are the same pattern. *)
  let parsed =
    Parser.pattern_exn "{set_imgAddr, set_glAddr, set_glSize} << start"
  in
  assert (Pattern.equal property parsed);
  Format.printf "property: %a@.@." Pattern.pp property;

  (* 2. Monitor a correct trace: the three writes in *some* order. *)
  let good =
    Trace.of_strings
      [ "set_glAddr"; "set_imgAddr"; "set_glSize"; "start" ]
  in
  (match Monitor.run property good with
  | Monitor.Satisfied -> Format.printf "good trace:   PASS (as expected)@."
  | Monitor.Running -> Format.printf "good trace:   PASS (still running)@."
  | Monitor.Violated v ->
      Format.printf "good trace:   unexpected failure: %a@." Diag.pp_violation v);

  (* 3. Monitor a buggy trace: start fired before the size was set. *)
  let bad =
    Trace.of_strings [ "set_glAddr"; "set_imgAddr"; "start"; "set_glSize" ]
  in
  (match Monitor.run property bad with
  | Monitor.Violated v -> Format.printf "buggy trace:  FAIL — %a@." Diag.pp_violation v
  | Monitor.Satisfied | Monitor.Running ->
      Format.printf "buggy trace:  unexpectedly passed?!@.");

  (* 4. The declarative semantics agrees with the monitor (it is the
        test oracle of this library). *)
  assert (Semantics.holds property good);
  assert (not (Semantics.holds property bad));

  (* 5. Inspect the monitor's cost, as in the paper's Fig. 6. *)
  let cost = Cost.drct property in
  Format.printf "@.Drct monitor cost: %a@." Cost.pp cost;
  let via = Loseq_psl.Cost.via_psl property in
  Format.printf "ViaPSL would cost:  %a@." Loseq_psl.Cost.pp via
