(* Timed implication constraints as simulation watchdogs.

   A minimal bespoke model (no full SoC): a DMA engine that must answer
   every `req` with a burst of 4..16 `beat`s followed by `done`, all
   within 2 us of the request.  This is Example 3's pattern shape
   [(P => Q, t)] on a different component, showing the API outside the
   case study.

   Run with: dune exec examples/timed_watchdog.exe *)

open Loseq_core
open Loseq_sim
open Loseq_verif

let property =
  Parser.pattern_exn "req => beat[4,16] < dma_done within 2000000"
(* 2_000_000 ps = 2 us *)

let dma_engine kernel tap ~beats ~beat_gap () =
  (* Respond to two requests. *)
  for _request = 1 to 2 do
    Kernel.wait_for kernel (Time.us 3);
    Tap.emit tap "req";
    Kernel.wait_loose kernel (Time.ns 100) (Time.ns 300);
    for _beat = 1 to beats do
      Tap.emit tap "beat";
      Kernel.wait_loose kernel beat_gap (Time.add beat_gap (Time.ns 40))
    done;
    Tap.emit tap "dma_done"
  done

let run_scenario title ~beats ~beat_gap =
  let kernel = Kernel.create () in
  let tap = Tap.create kernel in
  let checker = Checker.attach ~name:"DMA watchdog" tap property in
  Checker.on_violation checker (fun v ->
      Format.printf "  [%a] watchdog fired: %a@." Time.pp (Kernel.now kernel)
        Diag.pp_violation v);
  Kernel.spawn kernel (dma_engine kernel tap ~beats ~beat_gap);
  Kernel.run ~until:(Time.ms 1) kernel;
  ignore (Checker.finalize checker);
  Format.printf "%s: %a@." title Checker.pp_verdict (Checker.verdict checker)

let () =
  (* Healthy engine: 8 beats, ~100 ns apart — finishes well inside 2 us. *)
  run_scenario "healthy DMA " ~beats:8 ~beat_gap:(Time.ns 100);
  (* Underrun: only 2 beats — the burst can never reach its minimum of
     4, so `dma_done` arrives too early. *)
  run_scenario "short burst " ~beats:2 ~beat_gap:(Time.ns 100);
  (* Stalled engine: beats 400 ns apart * 16 = deadline miss, detected
     by the scheduled timeout the moment the budget is exhausted. *)
  run_scenario "stalled DMA " ~beats:16 ~beat_gap:(Time.ns 400)
