(* Closing the ABV loop of Fig. 1 around the case study:

     properties file -> checkers -> simulation -> coverage -> better
     stimuli -> measured latencies -> a justified deadline -> waveforms.

   Run with: dune exec examples/abv_closure.exe *)

open Loseq_core
open Loseq_sim
open Loseq_verif
open Loseq_platform

let properties_source =
  "# IPU interface contract (paper, Section 3)\n\
   config_before_start: {set_imgAddr, set_glAddr, set_glSize} << start\n\
   config_every_round:  {set_imgAddr, set_glAddr, set_glSize} <<! start\n\
   recognition_bounded: start => read_img[100,60000] < set_irq within \
   60000000\n"

let () =
  (* 1. The team's property file. *)
  let suite =
    match Suite.parse properties_source with
    | Ok suite -> suite
    | Error e -> Format.kasprintf failwith "%a" Suite.pp_error e
  in
  Format.printf "loaded %d properties:@." (List.length suite);
  List.iter
    (fun (e : Suite.entry) ->
      Format.printf "  %-22s %a@." e.Suite.label Pattern.pp e.Suite.pattern)
    suite;

  (* 2. Simulate the platform with every property attached, measuring
        the start -> set_irq latency on the side. *)
  let soc = Soc.create () in
  let report = Suite.attach_all (Soc.tap soc) suite in
  let latency =
    Latency.create ~from:(Name.v "start") ~until:(Name.v "set_irq")
      (Soc.tap soc)
  in
  Soc.run soc;
  Report.finalize report;
  Format.printf "@.simulation: %d events, properties %s@."
    (Tap.count (Soc.tap soc))
    (if Report.all_passed report then "all PASS" else "FAILED");

  (* 3. Measured latencies justify (or challenge) the deadline. *)
  (match Latency.summary latency with
  | Some s ->
      Format.printf "recognition latency: %a@." Latency.pp_summary s;
      (match Latency.suggest_deadline (Latency.durations latency) with
      | Some suggested ->
          Format.printf
            "suggested deadline (max + 50%%): %a; configured: %a@." Time.pp
            (Time.ps suggested) Time.pp
            (Soc.config soc).Soc.recognition_deadline
      | None -> ())
  | None -> Format.printf "no recognitions observed?!@.");

  (* 4. The coverage improver: which generated stimuli exercise the
        configuration property's recognizers best? *)
  let config_property =
    match Suite.find suite "config_every_round" with
    | Some p -> p
    | None -> assert false
  in
  let search = Explore.search ~budget:48 config_property in
  Format.printf "@.coverage search over generator seeds:@.%a@."
    Explore.pp_result search;

  (* 5. Waveforms for the humans. *)
  let path = Filename.temp_file "loseq_abv" ".vcd" in
  Vcd.write ~path (Tap.trace (Soc.tap soc));
  Format.printf "@.waveform written to %s (open with any VCD viewer)@." path
